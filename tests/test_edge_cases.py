"""Cross-cutting edge cases and doctest verification."""

import doctest

import pytest

import repro.sim.core
from repro.fabric import GB, NVLINK2_X1, Topology
from repro.sim import Environment


def test_sim_core_doctest():
    """The kernel's module docstring example must actually run."""
    results = doctest.testmod(repro.sim.core, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


class TestTransferEdges:
    @pytest.fixture()
    def topo(self):
        env = Environment()
        t = Topology(env)
        t.add_node("a", kind="gpu")
        t.add_node("b", kind="gpu")
        t.add_link(NVLINK2_X1, "a", "b")
        return t

    def test_zero_byte_transfer_pays_latency_only(self, topo):
        env = topo.env
        done = {}

        def go():
            yield topo.transfer("a", "b", 0.0)
            done["t"] = env.now

        env.process(go())
        env.run()
        assert done["t"] == pytest.approx(topo.path_latency("a", "b"))

    def test_self_transfer_is_free_of_streaming(self, topo):
        env = topo.env
        done = {}

        def go():
            yield topo.transfer("a", "a", 10 * GB)
            done["t"] = env.now

        env.process(go())
        env.run()
        # No route segments: only the fixed software overhead.
        assert done["t"] == pytest.approx(topo.transfer_overhead)

    def test_transfer_to_unknown_node_raises_eagerly(self, topo):
        with pytest.raises(KeyError):
            topo.transfer("a", "ghost", 1.0)


class TestBenchmarkConsistency:
    def test_every_benchmark_fits_its_paper_batch(self):
        """Each benchmark's default global batch must fit 8 GPUs under
        the default strategy and precision — otherwise the Table III
        experiments could not have run."""
        from repro.devices import V100_SXM2_16GB
        from repro.training import AMP_POLICY, DistributedDataParallel
        from repro.workloads import benchmark_names, get_benchmark
        ddp = DistributedDataParallel()
        for key in benchmark_names():
            b = get_benchmark(key)
            per_gpu = b.global_batch // 8
            need = ddp.memory_per_gpu(b.build(), AMP_POLICY, per_gpu, 8)
            assert need <= V100_SXM2_16GB.memory_bytes, \
                f"{key}: {need / 1e9:.1f} GB at batch {per_gpu}/GPU"

    def test_every_benchmark_divisible_by_eight(self):
        from repro.workloads import benchmark_names, get_benchmark
        for key in benchmark_names():
            assert get_benchmark(key).global_batch % 8 == 0, key

    def test_datasets_fit_host_page_cache(self):
        """The auto-caching heuristic applies to all three datasets on
        the 756 GB hosts (what makes steady-state loader storage-free)."""
        from repro.devices import SUPERMICRO_4029GP_TVRT
        from repro.workloads import benchmark_names, get_benchmark
        for key in benchmark_names():
            ds = get_benchmark(key).dataset
            assert ds.epoch_disk_bytes() \
                < 0.5 * SUPERMICRO_4029GP_TVRT.memory_bytes, key
