"""Unit and integration tests for the HostServer model."""

import pytest

from repro.devices import (
    HostServer,
    HostSpec,
    SSDPEDKX040T7,
    SUPERMICRO_4029GP_TVRT,
)
from repro.fabric import GB, GIB, Topology
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


@pytest.fixture()
def host(env, topo):
    return HostServer(env, topo, "host0")


class TestConstruction:
    def test_default_bill_of_materials(self, host):
        assert len(host.gpus) == 8
        assert len(host.nics) == 2
        assert len(host.plx_switches) == 4
        assert host.spec.memory_bytes == 756 * GIB
        assert host.cpu.spec.cores == 40

    def test_nodes_registered(self, host, topo):
        assert topo.has_node("host0/rc")
        assert topo.has_node("host0/dram")
        assert topo.has_node("host0/gpu0")
        assert topo.has_node("host0/scratch")

    def test_gpu_names(self, host):
        assert host.gpu_names == [f"host0/gpu{i}" for i in range(8)]
        assert host.gpu(3).name == "host0/gpu3"


class TestRouting:
    def test_nvlink_between_adjacent_gpus(self, host, topo):
        # GPUs 0 and 1 are NVLink-adjacent in the cube mesh.
        route = topo.route("host0/gpu0", "host0/gpu1")
        assert route.hops == 1
        assert route.segments[0].link.spec.protocol.name == "NVLINK2"

    def test_pcie_fallback_for_non_adjacent_gpus(self, host, topo):
        # GPUs 0 and 7 are not NVLink-adjacent: route goes via PCIe tree.
        route = topo.route("host0/gpu0", "host0/gpu7")
        assert route.hops > 1
        assert all(seg.link.spec.protocol.name != "NVLINK2"
                   for seg in route.segments)

    def test_h2d_path_via_dram(self, host, topo):
        route = topo.route("host0/dram", "host0/gpu0")
        assert route.nodes[0] == "host0/dram"
        assert "host0/rc" in route.nodes
        assert "host0/plx0" in route.nodes

    def test_gpus_share_plx_uplink(self, host, topo):
        # GPUs 0 and 1 hang off plx0; 2 and 3 off plx1.
        r01 = topo.route("host0/gpu0", "host0/gpu1")
        r_h2d_0 = topo.route("host0/dram", "host0/gpu0")
        r_h2d_2 = topo.route("host0/dram", "host0/gpu2")
        assert "host0/plx0" in r_h2d_0.nodes
        assert "host0/plx1" in r_h2d_2.nodes


class TestMemory:
    def test_alloc_and_utilization(self, env, host):
        def work():
            yield host.alloc_memory(378 * GIB)

        env.run(until=env.process(work()))
        assert host.memory_utilization == pytest.approx(0.5)

    def test_scratch_read_reaches_dram(self, env, host):
        done = {}

        def go():
            yield host.scratch.read_to(host.dram_node, 0.52 * GB)
            done["t"] = env.now

        env.process(go())
        env.run()
        # SATA scratch at 0.52 GB/s media rate.
        assert done["t"] == pytest.approx(1.0, rel=0.05)


class TestNVMe:
    def test_attach_and_read(self, env, host):
        drive = host.attach_nvme(SSDPEDKX040T7)
        assert host.nvme is drive

        def go():
            yield drive.read_to(host.dram_node, 3.29 * GB)

        env.process(go())
        env.run()
        assert env.now == pytest.approx(1.0, rel=0.02)

    def test_double_attach_rejected(self, host):
        host.attach_nvme()
        with pytest.raises(ValueError):
            host.attach_nvme()

    def test_detach(self, host, topo):
        host.attach_nvme()
        host.detach_nvme()
        assert host.nvme is None
        assert not topo.has_node("host0/nvme")

    def test_detach_without_drive_rejected(self, host):
        with pytest.raises(ValueError):
            host.detach_nvme()

    def test_nvme_faster_than_scratch(self, env, host):
        drive = host.attach_nvme()
        times = {}

        def nvme_read():
            yield drive.read_to(host.dram_node, 1 * GB)
            times["nvme"] = env.now

        env.process(nvme_read())
        env.run()
        start = env.now

        def scratch_read():
            yield host.scratch.read_to(host.dram_node, 1 * GB)
            times["scratch"] = env.now - start

        env.process(scratch_read())
        env.run()
        assert times["nvme"] < times["scratch"]


def test_custom_spec_fewer_gpus(env, topo):
    spec = HostSpec(name="small", local_gpus=4, nics=1)
    host = HostServer(env, topo, "small", spec)
    assert len(host.gpus) == 4
    assert len(host.plx_switches) == 2
    # No NVLink mesh with 4 GPUs: routes go over PCIe.
    route = topo.route("small/gpu0", "small/gpu1")
    assert all(s.link.spec.protocol.name != "NVLINK2"
               for s in route.segments)
