"""Unit tests for CPU, StorageDevice, and NIC models."""

import pytest

from repro.devices import (
    CPU,
    LOCAL_SCRATCH,
    NIC,
    SSDPEDKX040T7,
    StorageDevice,
    XEON_GOLD_6148_DUAL,
)
from repro.fabric import GB, PCIE_GEN4_X16, Topology
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


class TestCPU:
    def test_spec(self):
        assert XEON_GOLD_6148_DUAL.cores == 40

    def test_serial_work(self, env):
        cpu = CPU(env, "cpu")

        def work():
            yield cpu.run(10.0, parallelism=1)

        env.process(work())
        env.run()
        assert env.now == pytest.approx(10.0)
        assert cpu.busy.total == pytest.approx(10.0)

    def test_parallel_speedup(self, env):
        cpu = CPU(env, "cpu")

        def work():
            yield cpu.run(40.0, parallelism=8)

        env.process(work())
        env.run()
        assert env.now == pytest.approx(5.0)

    def test_parallelism_capped_at_cores(self, env):
        cpu = CPU(env, "cpu")

        def work():
            yield cpu.run(80.0, parallelism=1000)

        env.process(work())
        env.run()
        assert env.now == pytest.approx(80.0 / 40)

    def test_core_contention(self, env):
        cpu = CPU(env, "cpu")
        finish = []

        def work():
            yield cpu.run(40.0, parallelism=40)
            finish.append(env.now)

        env.process(work())
        env.process(work())
        env.run()
        # Each job takes 1s with all 40 cores; they serialize.
        assert finish == pytest.approx([1.0, 2.0])

    def test_utilization(self, env):
        cpu = CPU(env, "cpu")

        def work():
            yield cpu.run(40.0, parallelism=40)

        env.process(work())
        env.run(until=2.0)
        assert cpu.utilization(0.0, 2.0) == pytest.approx(0.5)
        assert cpu.utilization(1.0, 1.0) == 0.0

    def test_validation(self, env):
        cpu = CPU(env, "cpu")
        with pytest.raises(ValueError):
            cpu.run(-1.0)
        with pytest.raises(ValueError):
            cpu.run(1.0, parallelism=0)


class TestStorage:
    def make_host_side(self, topo):
        topo.add_node("rc", kind="rc", transit=True)
        topo.add_node("dram", kind="dram")
        topo.add_link(PCIE_GEN4_X16, "rc", "dram")
        return "rc", "dram"

    def test_specs(self):
        assert SSDPEDKX040T7.read_bandwidth == pytest.approx(3.29 * GB)
        assert LOCAL_SCRATCH.read_bandwidth < SSDPEDKX040T7.read_bandwidth

    def test_read_bottlenecked_by_media(self, env, topo):
        rc, dram = self.make_host_side(topo)
        drive = StorageDevice(env, topo, "nvme", SSDPEDKX040T7)
        topo.add_link(PCIE_GEN4_X16, rc, "nvme")

        def go():
            yield drive.read_to(dram, 3.29 * GB)

        env.process(go())
        env.run()
        # Media at 3.29 GB/s is the bottleneck -> ~1 s.
        assert env.now == pytest.approx(1.0, rel=0.01)
        assert drive.bytes_read.total == pytest.approx(3.29 * GB)

    def test_write_slower_than_read(self, env, topo):
        rc, dram = self.make_host_side(topo)
        drive = StorageDevice(env, topo, "nvme", SSDPEDKX040T7)
        topo.add_link(PCIE_GEN4_X16, rc, "nvme")
        times = {}

        def read():
            yield drive.read_to(dram, 1 * GB)
            times["read"] = env.now

        env.process(read())
        env.run()
        t_read = times["read"]

        def write():
            yield drive.write_from(dram, 1 * GB)
            times["write"] = env.now - t_read

        env.process(write())
        env.run()
        assert times["write"] > t_read
        assert drive.bytes_written.total == pytest.approx(1 * GB)

    def test_capacity_bookkeeping(self, env, topo):
        drive = StorageDevice(env, topo, "nvme", SSDPEDKX040T7)
        drive.store(3e12)
        assert drive.used_bytes == 3e12
        with pytest.raises(IOError):
            drive.store(2e12)
        drive.evict(3e12)
        assert drive.used_bytes == 0.0

    def test_negative_read_rejected(self, env, topo):
        drive = StorageDevice(env, topo, "nvme")
        with pytest.raises(ValueError):
            drive.read_to("anywhere", -1.0)

    def test_queue_depth_limits_concurrency(self, env, topo):
        rc, dram = self.make_host_side(topo)
        spec = LOCAL_SCRATCH
        drive = StorageDevice(env, topo, "disk", spec)
        topo.add_link(PCIE_GEN4_X16, rc, "disk")
        finish = []

        def go():
            yield drive.read_to(dram, 0.52 * GB)  # 1 s at media rate
            finish.append(env.now)

        # 2x queue depth jobs: fair sharing among queued commands, but
        # total time is work-conserving: 16 jobs x 1 s = 16 s.
        for _ in range(16):
            env.process(go())
        env.run()
        assert max(finish) == pytest.approx(16.0, rel=0.05)


class TestNIC:
    def test_send_serialization_time(self, env, topo):
        nic = NIC(env, topo, "nic0")

        def go():
            yield nic.send(1.15 * GB)

        env.process(go())
        env.run()
        assert env.now == pytest.approx(1.0)
        assert nic.bytes_sent.total == pytest.approx(1.15 * GB)

    def test_negative_send_rejected(self, env, topo):
        nic = NIC(env, topo, "nic0")
        with pytest.raises(ValueError):
            nic.send(-1.0)
