"""Unit tests for the GPU device model."""

import pytest

from repro.devices import GPU, Precision, V100_SXM2_16GB, V100_PCIE_16GB
from repro.fabric import GIB, Topology
from repro.sim import Environment

TFLOPS = 1e12


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


@pytest.fixture()
def gpu(env, topo):
    return GPU(env, topo, "gpu0", V100_SXM2_16GB)


class TestSpec:
    def test_v100_characteristics(self):
        assert V100_SXM2_16GB.memory_bytes == 16 * GIB
        assert V100_SXM2_16GB.fp16_flops == pytest.approx(125 * TFLOPS)
        assert V100_SXM2_16GB.nvlink_ports == 6
        assert V100_PCIE_16GB.nvlink_ports == 0

    def test_peak_flops_by_precision(self):
        assert V100_SXM2_16GB.peak_flops(Precision.FP16) > \
            V100_SXM2_16GB.peak_flops(Precision.FP32)


class TestKernelTime:
    def test_compute_bound(self, gpu):
        # 15.7 TFLOP at 100% efficiency of 15.7 TFLOP/s -> 1 s.
        t = gpu.kernel_time(15.7 * TFLOPS, 0.0, Precision.FP32,
                            efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_memory_bound(self, gpu):
        # 900 GB touched at 900 GB/s -> 1 s regardless of tiny FLOPs.
        t = gpu.kernel_time(1.0, 900e9, Precision.FP32, efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_fp16_faster(self, gpu):
        t32 = gpu.kernel_time(1 * TFLOPS, 0, Precision.FP32)
        t16 = gpu.kernel_time(1 * TFLOPS, 0, Precision.FP16)
        assert t16 < t32

    def test_efficiency_scales(self, gpu):
        t_full = gpu.kernel_time(1 * TFLOPS, 0, efficiency=1.0)
        t_half = gpu.kernel_time(1 * TFLOPS, 0, efficiency=0.5)
        assert t_half == pytest.approx(2 * t_full)

    def test_validation(self, gpu):
        with pytest.raises(ValueError):
            gpu.kernel_time(-1.0)
        with pytest.raises(ValueError):
            gpu.kernel_time(1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            gpu.kernel_time(1.0, efficiency=1.5)


class TestCompute:
    def test_busy_accounting(self, env, gpu):
        def work():
            yield gpu.compute(15.7 * TFLOPS, 0, Precision.FP32,
                              efficiency=1.0)

        env.process(work())
        env.run()
        assert env.now == pytest.approx(1.0)
        assert gpu.busy.total == pytest.approx(1.0)
        assert gpu.kernels_launched == 1
        assert gpu.busy_fraction(0.0, 1.0) == pytest.approx(1.0)

    def test_kernels_serialize_on_stream(self, env, gpu):
        def work():
            yield gpu.compute(15.7 * TFLOPS, 0, efficiency=1.0)

        env.process(work())
        env.process(work())
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_mem_access_fraction(self, env, gpu):
        def work():
            # Perfectly balanced: compute time == memory time.
            yield gpu.compute(15.7 * TFLOPS, 900e9, efficiency=1.0)

        env.process(work())
        env.run()
        assert gpu.mem_access_fraction(0.0, env.now) == pytest.approx(1.0)

    def test_idle_gpu_zero_utilization(self, env, gpu):
        env.run(until=10.0)
        assert gpu.busy_fraction(0.0, 10.0) == 0.0
        assert gpu.busy_fraction(5.0, 5.0) == 0.0


class TestMemory:
    def test_alloc_free(self, env, gpu):
        def work():
            yield gpu.alloc(4 * GIB)
            assert gpu.memory_used == 4 * GIB
            assert gpu.memory_utilization == pytest.approx(0.25)
            yield gpu.free(4 * GIB)

        env.run(until=env.process(work()))
        assert gpu.memory_used == 0.0

    def test_oversize_allocation_raises(self, gpu):
        with pytest.raises(MemoryError):
            gpu.alloc(17 * GIB)

    def test_alloc_blocks_until_freed(self, env, gpu):
        order = []

        def hog():
            yield gpu.alloc(12 * GIB)
            yield env.timeout(5.0)
            yield gpu.free(12 * GIB)

        def late():
            yield env.timeout(1.0)
            yield gpu.alloc(8 * GIB)
            order.append(env.now)

        env.process(hog())
        env.process(late())
        env.run()
        assert order == [5.0]


def test_gpu_registers_topology_node(env, topo):
    gpu = GPU(env, topo, "gpuX")
    assert topo.has_node("gpuX")
    assert topo.node("gpuX").kind == "gpu"
    assert not topo.node("gpuX").transit
