"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_train_validates_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "alexnet"])

    def test_train_validates_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "resnet50", "--config", "cloud"])


class TestStaticCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "bert-large" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "PyTorch 1.7.1" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "25.6M" in out
        assert "BERT-L" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "falconNVMe" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "CPU - Disk" in capsys.readouterr().out


class TestSimulationCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "NVLink" in out
        assert "72.3" in out

    def test_train_and_export(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        assert main(["train", "resnet50", "--config", "falconGPUs",
                     "--steps", "5", "--export", str(target)]) == 0
        out = capsys.readouterr().out
        assert "step time" in out
        data = json.loads(target.read_text())
        assert data[0]["configuration"] == "falconGPUs"

    def test_recommend(self, capsys):
        assert main(["recommend", "resnet50", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out
        assert "->" in out


class TestHelpSmoke:
    def test_every_subcommand_help_exits_zero(self, capsys):
        # Introspect the registered subcommands so new ones are covered
        # automatically.
        parser = build_parser()
        sub_action = next(a for a in parser._actions
                          if hasattr(a, "choices") and a.choices)
        names = list(sub_action.choices)
        assert "fault-tolerance" in names
        for name in names:
            with pytest.raises(SystemExit) as exc_info:
                parser.parse_args([name, "--help"])
            assert exc_info.value.code == 0, name
            assert capsys.readouterr().out  # help text was printed

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["--help"])
        assert exc_info.value.code == 0


@pytest.mark.chaos
class TestFaultToleranceCommand:
    def test_fault_tolerance_runs(self, capsys):
        assert main(["fault-tolerance", "--benchmark", "resnet50",
                     "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "gpu_hotplug" in out

    def test_fault_tolerance_validates_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fault-tolerance", "--config",
                                       "cloudGPUs"])


class TestTraceCommand:
    def test_trace_smoke_local(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "mobilenetv2", "--backend", "local",
                     "--smoke", "--trace-out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "per-step attribution" in out
        assert "trace OK" in out
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]

    def test_trace_falcon_prints_fig11_split(self, capsys):
        assert main(["trace", "mobilenetv2", "--backend", "falcon",
                     "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 11 split" in out
        assert "comm" in out
        assert "span-reconstructed total" in out

    def test_trace_validates_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "resnet50", "--backend", "cloud"])

    def test_train_trace_out(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        assert main(["train", "mobilenetv2", "--steps", "4",
                     "--trace-out", str(out_path)]) == 0
        assert "wrote trace" in capsys.readouterr().out
        from repro.telemetry import validate_chrome_trace
        assert validate_chrome_trace(
            json.loads(out_path.read_text())) == []


class TestPlanCommand:
    def test_prints_the_compiled_program(self, capsys):
        assert main(["plan", "bert-large"]) == 0
        out = capsys.readouterr().out
        assert "plan ddp-step  world=8" in out
        assert "rank 0:" in out and "rank 7:" in out
        assert "grad-bucket" in out

    def test_validate_clean_plan_exits_zero(self, capsys):
        assert main(["plan", "bert-large", "--strategy", "pipeline",
                     "--validate"]) == 0
        assert "plan OK" in capsys.readouterr().out

    def test_diff_lists_strategy_divergence(self, capsys):
        assert main(["plan", "bert-large", "--strategy", "ddp",
                     "--diff", "sharded"]) == 0
        out = capsys.readouterr().out
        assert "'allreduce' -> 'reduce_scatter'" in out
        assert "allgather-wait" in out

    def test_validates_strategy_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "bert-large", "--strategy", "3d-sequence"])

    def test_opt_prints_a_report_per_pass(self, capsys):
        assert main(["plan", "bert-large", "--config", "falconGPUs",
                     "--opt", "bucketing,overlap"]) == 0
        out = capsys.readouterr().out
        assert "pass bucketing: " in out
        assert "pass overlap: " in out
        assert "fused=" in out  # fusion visible in the listing

    def test_opt_all_validates_clean(self, capsys):
        assert main(["plan", "bert-large", "--config", "falconGPUs",
                     "--opt", "all", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "plan OK" in out
        assert "chunk=" in out  # chunk-size annotations in the listing

    def test_unknown_opt_pass_exits_2(self, capsys):
        assert main(["plan", "bert-large", "--opt", "voodoo"]) == 2
        assert "unknown plan pass 'voodoo'" in capsys.readouterr().out

    def test_validate_broken_plan_exits_1(self, capsys, monkeypatch):
        # A compiler emitting a rank-asymmetric plan must be caught by
        # --validate with a nonzero exit, not silently printed.
        from repro.plan import PlanBuilder
        from repro.training import (
            DistributedDataParallel,
            clear_plan_compile_cache,
        )

        def broken(self, ctx):
            b = PlanBuilder("broken", world_size=len(ctx.gpus))
            b.collective(0, "grad", "allreduce", 1e6)  # rank 0 only
            return b.build()

        monkeypatch.setattr(DistributedDataParallel, "compile_step",
                            broken)
        # The process-wide compile memo would otherwise serve a valid
        # plan compiled by an earlier test for the same cell — and the
        # broken plan compiled here must not leak to later tests.
        clear_plan_compile_cache()
        try:
            assert main(["plan", "bert-large", "--validate"]) == 1
            assert "plan problem" in capsys.readouterr().out
        finally:
            clear_plan_compile_cache()

    def test_diff_reports_differing_op_counts(self, capsys):
        # The optimized plan has fewer ops than the unoptimized one of
        # the same strategy; the diff header carries both counts.
        assert main(["plan", "bert-large", "--config", "falconGPUs",
                     "--strategy", "ddp", "--diff", "dp"]) == 0
        out = capsys.readouterr().out
        assert "diff 'ddp-step'" in out and "'dp-step'" in out
        import re
        counts = re.search(r"diff 'ddp-step' \((\d+) ops\) -> "
                           r"'dp-step' \((\d+) ops\)", out)
        assert counts and counts.group(1) != counts.group(2)


class TestFig16OptCommand:
    def test_fig16_opt_smoke(self, capsys, tmp_path):
        trace = tmp_path / "opt.json"
        assert main(["fig16-opt", "--steps", "4",
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "optimizing plan passes" in out
        assert "bucketing+overlap" in out
        assert "wrote optimized-run trace" in out
        trace_json = json.loads(trace.read_text())
        assert trace_json["traceEvents"]


class TestProfileCommand:
    def test_profile_text_report(self, capsys):
        assert main(["profile", "mobilenetv2", "--backend", "local",
                     "--steps", "4", "--no-what-if"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck report:" in out
        assert "verdict:" in out
        assert "critical-path attribution" in out
        assert "reconciliation" in out

    def test_profile_json_report(self, capsys, tmp_path):
        out_path = tmp_path / "profile.json"
        assert main(["profile", "mobilenetv2", "--backend", "local",
                     "--steps", "4", "--no-what-if", "--format",
                     "json", "--output", str(out_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["label"].endswith("-bound") or \
            payload["label"].startswith("balanced")
        assert payload["run"]["reconciliation_rel_err"] <= 1e-9
        assert json.loads(out_path.read_text()) == payload

    def test_profile_with_what_ifs(self, capsys):
        assert main(["profile", "mobilenetv2", "--backend", "local",
                     "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "what-if speedup ceilings" in out
        assert "relaxation" in out or "fastpath" in out

    def test_profile_unknown_benchmark_exits_2(self):
        with pytest.raises(SystemExit) as err:
            main(["profile", "alexnet"])
        assert err.value.code == 2

    def test_profile_unknown_opt_pass_exits_2(self, capsys):
        assert main(["profile", "mobilenetv2", "--backend", "local",
                     "--opt", "warpdrive"]) == 2
        assert "unknown" in capsys.readouterr().out.lower()


class TestRegressCommand:
    def test_missing_baseline_exits_2(self, capsys, tmp_path,
                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["regress"]) == 2
        assert "baseline" in capsys.readouterr().out.lower()

    def test_invalid_baseline_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"meta": {}}))
        assert main(["regress", "--baseline", str(bad)]) == 2

    def test_parser_accepts_tolerance_and_full(self):
        args = build_parser().parse_args(
            ["regress", "--tolerance", "0.2", "--full"])
        assert args.tolerance == pytest.approx(0.2)
        assert args.full


class TestProfileFlags:
    def test_fig16_parser_accepts_profile(self):
        args = build_parser().parse_args(["fig16", "--profile"])
        assert args.profile

    def test_fig16_opt_parser_accepts_profile(self):
        args = build_parser().parse_args(["fig16-opt", "--profile"])
        assert args.profile

    def test_trace_timeline_width(self, capsys):
        assert main(["trace", "mobilenetv2", "--backend", "local",
                     "--smoke", "--timeline-width", "24"]) == 0
        assert "trace OK" in capsys.readouterr().out
