"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_train_validates_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "alexnet"])

    def test_train_validates_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "resnet50", "--config", "cloud"])


class TestStaticCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "bert-large" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "PyTorch 1.7.1" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "25.6M" in out
        assert "BERT-L" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "falconNVMe" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "CPU - Disk" in capsys.readouterr().out


class TestSimulationCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "NVLink" in out
        assert "72.3" in out

    def test_train_and_export(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        assert main(["train", "resnet50", "--config", "falconGPUs",
                     "--steps", "5", "--export", str(target)]) == 0
        out = capsys.readouterr().out
        assert "step time" in out
        data = json.loads(target.read_text())
        assert data[0]["configuration"] == "falconGPUs"

    def test_recommend(self, capsys):
        assert main(["recommend", "resnet50", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out
        assert "->" in out


class TestHelpSmoke:
    def test_every_subcommand_help_exits_zero(self, capsys):
        # Introspect the registered subcommands so new ones are covered
        # automatically.
        parser = build_parser()
        sub_action = next(a for a in parser._actions
                          if hasattr(a, "choices") and a.choices)
        names = list(sub_action.choices)
        assert "fault-tolerance" in names
        for name in names:
            with pytest.raises(SystemExit) as exc_info:
                parser.parse_args([name, "--help"])
            assert exc_info.value.code == 0, name
            assert capsys.readouterr().out  # help text was printed

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["--help"])
        assert exc_info.value.code == 0


@pytest.mark.chaos
class TestFaultToleranceCommand:
    def test_fault_tolerance_runs(self, capsys):
        assert main(["fault-tolerance", "--benchmark", "resnet50",
                     "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "gpu_hotplug" in out

    def test_fault_tolerance_validates_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fault-tolerance", "--config",
                                       "cloudGPUs"])


class TestTraceCommand:
    def test_trace_smoke_local(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "mobilenetv2", "--backend", "local",
                     "--smoke", "--trace-out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "per-step attribution" in out
        assert "trace OK" in out
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]

    def test_trace_falcon_prints_fig11_split(self, capsys):
        assert main(["trace", "mobilenetv2", "--backend", "falcon",
                     "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 11 split" in out
        assert "comm" in out
        assert "span-reconstructed total" in out

    def test_trace_validates_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "resnet50", "--backend", "cloud"])

    def test_train_trace_out(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        assert main(["train", "mobilenetv2", "--steps", "4",
                     "--trace-out", str(out_path)]) == 0
        assert "wrote trace" in capsys.readouterr().out
        from repro.telemetry import validate_chrome_trace
        assert validate_chrome_trace(
            json.loads(out_path.read_text())) == []


class TestPlanCommand:
    def test_prints_the_compiled_program(self, capsys):
        assert main(["plan", "bert-large"]) == 0
        out = capsys.readouterr().out
        assert "plan ddp-step  world=8" in out
        assert "rank 0:" in out and "rank 7:" in out
        assert "grad-bucket" in out

    def test_validate_clean_plan_exits_zero(self, capsys):
        assert main(["plan", "bert-large", "--strategy", "pipeline",
                     "--validate"]) == 0
        assert "plan OK" in capsys.readouterr().out

    def test_diff_lists_strategy_divergence(self, capsys):
        assert main(["plan", "bert-large", "--strategy", "ddp",
                     "--diff", "sharded"]) == 0
        out = capsys.readouterr().out
        assert "'allreduce' -> 'reduce_scatter'" in out
        assert "allgather-wait" in out

    def test_validates_strategy_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "bert-large", "--strategy", "fsdp"])
