"""``validate_plan`` runs exactly once per plan on the no-pass path."""

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import ExecutionContext, PlanBuilder, PlanExecution
from repro.plan import validate as validate_mod
from repro.training import Communicator


def make_ctx():
    system = ComposableSystem()
    active = system.configure("localGPUs")
    gpus = list(active.gpus)[:1]
    comm = Communicator(system.env, system.topology,
                        [g.name for g in gpus], gpus=gpus)
    return ExecutionContext(env=system.env, comm=comm, gpus=gpus,
                            topology=system.topology,
                            host_node=system.host.dram_node,
                            storage=active.storage)


def tiny_plan():
    b = PlanBuilder("step", world_size=1)
    b.compute(0, "forward", flops=1e12, hbm_bytes=0.0,
              precision=Precision.FP16, efficiency=0.5)
    return b.build()


def counting(monkeypatch):
    calls = []
    real = validate_mod.validate_plan

    def spy(plan):
        calls.append(plan)
        return real(plan)

    monkeypatch.setattr(validate_mod, "validate_plan", spy)
    return calls


def test_executor_validates_a_fresh_plan_exactly_once(monkeypatch):
    calls = counting(monkeypatch)
    ctx = make_ctx()
    plan = tiny_plan()
    assert plan.validated is False
    for _ in range(3):  # replay, as the training loop does every step
        execution = PlanExecution(plan, ctx)
        ctx.env.process(execution.run_rank(0))
        ctx.env.run()
    assert calls == [plan]
    assert plan.validated is True


def test_prevalidated_plan_skips_the_check(monkeypatch):
    calls = counting(monkeypatch)
    ctx = make_ctx()
    plan = tiny_plan()
    validate_mod.assert_valid(plan)
    assert plan.validated is True
    PlanExecution(plan, ctx)
    assert calls == [plan]  # only the explicit assert_valid above
