"""Plan IR: builder uid scheme, StepPlan invariants, formatting."""

import pytest

from repro.devices.gpu import Precision
from repro.plan import (
    Collective,
    Compute,
    PlanBuilder,
    PlanError,
    StepPlan,
    format_plan,
)


def _compute(b, rank, name, deps=()):
    return b.compute(rank, name, flops=1e9, hbm_bytes=1e6,
                     precision=Precision.FP16, efficiency=0.5, deps=deps)


class TestPlanBuilder:
    def test_uids_are_deterministic(self):
        b = PlanBuilder("p", world_size=2)
        assert _compute(b, 0, "forward") == "r0:forward"
        assert _compute(b, 1, "forward") == "r1:forward"
        # Repeats get an @n suffix in creation order.
        assert _compute(b, 0, "forward") == "r0:forward@1"
        assert _compute(b, 0, "forward") == "r0:forward@2"

    def test_two_compiles_yield_identical_uids(self):
        def compile_once():
            b = PlanBuilder("p", world_size=2)
            f = _compute(b, 0, "forward")
            b.collective(0, "grad", "allreduce", 1e6, deps=[f])
            return [op.uid for op in b.build()]

        assert compile_once() == compile_once()

    def test_rank_out_of_range(self):
        b = PlanBuilder("p", world_size=2)
        with pytest.raises(PlanError, match="out of range"):
            _compute(b, 2, "forward")

    def test_unknown_collective_kind(self):
        b = PlanBuilder("p", world_size=2)
        with pytest.raises(PlanError, match="unknown collective"):
            b.collective(0, "x", "gossip", 1e6)

    def test_p2p_rejects_self_copy(self):
        b = PlanBuilder("p", world_size=2)
        with pytest.raises(PlanError, match="sending rank itself"):
            b.p2p(0, "send", 0, 1e6)

    def test_dangling_dep_rejected_at_build(self):
        b = PlanBuilder("p", world_size=1)
        b.barrier(0, deps=["r0:nonexistent"])
        with pytest.raises(PlanError, match="unknown op"):
            b.build()

    def test_none_deps_are_dropped(self):
        b = PlanBuilder("p", world_size=1)
        f = _compute(b, 0, "forward")
        b.barrier(0, deps=[None, f, None])
        plan = b.build()
        assert plan.op("r0:barrier").deps == (f,)

    def test_conservation_declaration_lands_in_meta(self):
        b = PlanBuilder("p", world_size=1)
        b.declare_conservation("gradients", 5e9)
        assert b.build().meta["conservation"] == {"gradients": 5e9}


class TestStepPlan:
    def _plan(self):
        b = PlanBuilder("p", world_size=2)
        for rank in range(2):
            f = _compute(b, rank, "forward")
            g = b.collective(rank, "grad", "allreduce", 1e6, deps=[f])
            _compute(b, rank, "optimizer", deps=[g])
        return b.build()

    def test_duplicate_uid_rejected(self):
        op = Compute(uid="x", rank=0, name="x", deps=(), flops=1.0,
                     hbm_bytes=0.0, precision=Precision.FP16,
                     efficiency=0.5)
        with pytest.raises(PlanError, match="duplicate"):
            StepPlan("p", 1, [op, op])

    def test_by_rank_preserves_program_order(self):
        plan = self._plan()
        assert [op.name for op in plan.by_rank(1)] == \
            ["forward", "grad", "optimizer"]

    def test_counts_and_bytes(self):
        plan = self._plan()
        assert plan.counts() == {"compute": 4, "collective": 2}
        assert plan.critical_path_bytes() == pytest.approx(2e6)

    def test_topo_order_respects_deps(self):
        order = [op.uid for op in self._plan().topo_order()]
        assert order.index("r0:forward") < order.index("r0:grad") \
            < order.index("r0:optimizer")

    def test_lookup_and_membership(self):
        plan = self._plan()
        assert isinstance(plan.op("r0:grad"), Collective)
        assert "r1:optimizer" in plan and "r9:optimizer" not in plan
        with pytest.raises(PlanError, match="no op"):
            plan.op("r9:optimizer")


class TestFormatPlan:
    def test_listing_mentions_every_op_and_meta(self):
        b = PlanBuilder("demo", world_size=2, meta={"strategy": "test"})
        f = _compute(b, 0, "forward")
        b.collective(0, "grad", "allreduce", 25e6, deps=[f])
        _compute(b, 1, "forward")
        b.declare_conservation("gradients", 25e6)
        text = format_plan(b.build())
        assert "plan demo  world=2" in text
        assert "strategy: test" in text
        assert "conservation: gradients=25.00MB" in text
        assert "rank 0:" in text and "rank 1:" in text
        assert "allreduce" in text

    def test_rank_filter(self):
        b = PlanBuilder("demo", world_size=2)
        _compute(b, 0, "forward")
        _compute(b, 1, "forward")
        text = format_plan(b.build(), ranks=[1])
        assert "rank 1:" in text and "rank 0:" not in text
