"""Plan differ: uid-matched add/remove/change detection and rendering."""

from repro.devices.gpu import Precision
from repro.plan import PlanBuilder, diff_plans, format_diff


def _plan(grad_kind="allreduce", with_allgather=False, nbytes=1e6,
          meta=None):
    b = PlanBuilder("p", world_size=2, meta=meta)
    for rank in range(2):
        f = b.compute(rank, "forward", flops=1e9, hbm_bytes=1e6,
                      precision=Precision.FP16, efficiency=0.5)
        g = b.collective(rank, "grad", grad_kind, nbytes, deps=[f])
        last = g
        if with_allgather:
            last = b.collective(rank, "allgather-wait", "all_gather",
                                nbytes, deps=[g])
        b.barrier(rank, "sync", deps=[last])
    return b.build()


class TestDiffPlans:
    def test_identical(self):
        diff = diff_plans(_plan(), _plan())
        assert diff.identical
        assert not diff.added and not diff.removed and not diff.changed

    def test_added_and_removed(self):
        diff = diff_plans(_plan(with_allgather=True), _plan())
        assert sorted(diff.removed) == ["r0:allgather-wait",
                                        "r1:allgather-wait"]
        assert diff.added == []
        # sync's deps changed because its predecessor disappeared.
        assert any(c.uid == "r0:sync" and c.field == "deps"
                   for c in diff.changed)

    def test_field_changes(self):
        diff = diff_plans(_plan("allreduce"), _plan("reduce_scatter"))
        changes = {(c.uid, c.field): (c.a, c.b) for c in diff.changed}
        assert changes[("r0:grad", "comm")] == ("allreduce",
                                                "reduce_scatter")
        assert changes[("r1:grad", "comm")] == ("allreduce",
                                                "reduce_scatter")

    def test_meta_changes(self):
        diff = diff_plans(_plan(meta={"strategy": "ddp"}),
                          _plan(meta={"strategy": "sharded"}))
        assert diff.meta_changed == {"strategy": ("ddp", "sharded")}
        assert not diff.identical


class TestFormatDiff:
    def test_identical_message(self):
        a, b = _plan(), _plan()
        assert "identical" in format_diff(diff_plans(a, b), a, b)

    def test_sections_rendered(self):
        a = _plan("allreduce", with_allgather=True)
        b = _plan("reduce_scatter", nbytes=2e6)
        text = format_diff(diff_plans(a, b), a, b)
        assert text.startswith("diff 'p'")
        assert "- [r0:allgather-wait]" in text
        assert "~ r0:grad: comm 'allreduce' -> 'reduce_scatter'" in text
        assert "~ r0:grad: bytes 1000000.0 -> 2000000.0" in text

    def test_truncation(self):
        a = _plan("allreduce")
        b = _plan("reduce_scatter")
        text = format_diff(diff_plans(a, b), a, b, limit=1)
        assert "more" in text
