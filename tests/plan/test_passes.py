"""Unit tests for the optimization passes and the pass manager."""

import pytest

from repro.devices.gpu import Precision
from repro.plan import (
    Collective,
    PlanBuilder,
    PlanValidationError,
    validate_plan,
)
from repro.plan.passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    CollectiveChunkSizing,
    CopyFusion,
    GradientBucketing,
    OverlapScheduling,
    PassContext,
    PassError,
    PassManager,
    PlanPass,
    resolve_passes,
)


def _compute(b, rank, name, deps=()):
    return b.compute(rank, name, flops=1e9, hbm_bytes=1e6,
                     precision=Precision.FP16, efficiency=0.5, deps=deps)


def _ddp_like_plan(world=2, buckets=4, bucket_bytes=10e6,
                   gate_interval=0.01):
    """What the DDP compiler emits: per-bucket gates + allreduces."""
    b = PlanBuilder("ddp-like", world_size=world)
    for rank in range(world):
        fwd = _compute(b, rank, "fwd")
        colls = []
        for i in range(buckets):
            gate = b.delay(rank, f"gate{i}",
                           seconds=gate_interval * (i + 1),
                           deps=[fwd], traced=False)
            colls.append(b.collective(rank, f"grad{i}", "allreduce",
                                      bucket_bytes, deps=[gate],
                                      payload="grad"))
        _compute(b, rank, "opt", deps=colls)
    b.declare_conservation("grad", world * buckets * bucket_bytes)
    return b.build()


# -- manager / registry ------------------------------------------------------

class TestPassManager:
    def test_rejects_invalid_input_plan(self):
        b = PlanBuilder("bad", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)  # rank 1 silent
        with pytest.raises(PlanValidationError):
            PassManager([GradientBucketing()]).run(b.build())

    def test_catches_a_pass_that_desynchronizes_ranks(self):
        class Desync(PlanPass):
            name = "desync"

            def run(self, plan, ctx):
                from repro.plan import StepPlan
                ops = [op for op in plan.ops
                       if not (isinstance(op, Collective)
                               and op.rank == 1)]
                return StepPlan(plan.name, plan.world_size, ops,
                                plan.meta)

        with pytest.raises(PlanValidationError):
            PassManager([Desync()]).run(_ddp_like_plan())

    def test_validate_false_skips_the_net(self):
        class Noop(PlanPass):
            name = "noop"

            def run(self, plan, ctx):
                return plan

        plan = _ddp_like_plan()
        out = PassManager([Noop()], validate=False).run(plan)
        assert out.meta["opt"] == "noop"

    def test_reports_and_meta_stamp(self):
        manager = PassManager([GradientBucketing(cap_bytes=25e6)])
        out = manager.run(_ddp_like_plan())
        assert out.meta["opt"] == "bucketing(cap=25MB)"
        (report,) = manager.reports
        assert report.changed
        assert report.ops_before == len(_ddp_like_plan())
        assert report.ops_after < report.ops_before
        assert report.summary().startswith("bucketing: ")

    def test_rejects_non_pass(self):
        with pytest.raises(PassError, match="not a PlanPass"):
            PassManager(["bucketing"])


class TestResolvePasses:
    def test_comma_string(self):
        pipeline = resolve_passes("bucketing,overlap")
        assert [p.name for p in pipeline] == ["bucketing", "overlap"]

    def test_all_expands_to_default_pipeline(self):
        assert [p.name for p in resolve_passes("all")] \
            == list(DEFAULT_PIPELINE)

    def test_mixed_instances_and_names(self):
        custom = GradientBucketing(cap_bytes=1e6)
        pipeline = resolve_passes([custom, "overlap"])
        assert pipeline[0] is custom
        assert pipeline[1].name == "overlap"

    def test_unknown_name_raises(self):
        with pytest.raises(PassError, match="unknown plan pass"):
            resolve_passes("bucketing,fuse-everything")

    def test_registry_covers_default_pipeline(self):
        assert set(DEFAULT_PIPELINE) <= set(PASS_REGISTRY)


# -- bucketing ---------------------------------------------------------------

class TestGradientBucketing:
    def test_fuses_up_to_cap(self):
        plan = _ddp_like_plan(buckets=4, bucket_bytes=10e6)
        out = GradientBucketing(cap_bytes=25e6).run(plan, PassContext())
        assert validate_plan(out) == []
        for rank in range(2):
            colls = [op for op in out.by_rank(rank)
                     if isinstance(op, Collective)]
            # 4 x 10 MB under a 25 MB cap -> two 20 MB pairs.
            assert [c.bytes for c in colls] == [20e6, 20e6]
            assert [c.fused for c in colls] == [2, 2]
        # Heads keep the first constituent's uid (differ-friendly).
        assert "r0:grad0" in out and "r0:grad2" in out
        assert "r0:grad1" not in out

    def test_fused_op_depends_on_every_constituent_gate(self):
        plan = _ddp_like_plan(buckets=2, bucket_bytes=10e6)
        out = GradientBucketing(cap_bytes=25e6).run(plan, PassContext())
        head = out.op("r0:grad0")
        assert set(head.deps) == {"r0:gate0", "r0:gate1"}

    def test_dependents_retargeted_to_the_head(self):
        plan = _ddp_like_plan(buckets=4, bucket_bytes=10e6)
        out = GradientBucketing(cap_bytes=25e6).run(plan, PassContext())
        assert set(out.op("r0:opt").deps) == {"r0:grad0", "r0:grad2"}

    def test_cap_blocks_fusion(self):
        plan = _ddp_like_plan(buckets=2, bucket_bytes=10e6)
        out = GradientBucketing(cap_bytes=15e6).run(plan, PassContext())
        assert out is plan  # nothing fit: identity

    def test_barrier_breaks_the_run(self):
        b = PlanBuilder("p", world_size=1)
        c0 = b.collective(0, "g0", "allreduce", 1e6, payload="grad")
        bar = b.barrier(0, "bar", deps=[c0])
        b.collective(0, "g1", "allreduce", 1e6, payload="grad",
                     deps=[bar])
        b.declare_conservation("grad", 2e6)
        plan = b.build()
        assert GradientBucketing().run(plan, PassContext()) is plan

    def test_untagged_collectives_never_fuse(self):
        b = PlanBuilder("p", world_size=1)
        c0 = b.collective(0, "g0", "allreduce", 1e6)
        b.collective(0, "g1", "allreduce", 1e6, deps=[c0])
        plan = b.build()
        assert GradientBucketing().run(plan, PassContext()) is plan

    def test_intervening_op_blocks_fusion(self):
        # A -> X(compute) -> B: fusing A and B would make X both an
        # ancestor and a descendant of the fused op — a cycle.
        b = PlanBuilder("p", world_size=1)
        a = b.collective(0, "g0", "allreduce", 1e6, payload="grad")
        x = _compute(b, 0, "rescale", deps=[a])
        b.collective(0, "g1", "allreduce", 1e6, payload="grad",
                     deps=[x])
        b.declare_conservation("grad", 2e6)
        plan = b.build()
        out = GradientBucketing().run(plan, PassContext())
        assert out is plan
        assert validate_plan(out) == []

    def test_rejects_non_positive_cap(self):
        with pytest.raises(PassError):
            GradientBucketing(cap_bytes=0)

    def test_real_ddp_plan_shrinks(self):
        from repro.core import ComposableSystem
        from repro.training import (DistributedDataParallel,
                                    TrainingConfig, TrainingJob)
        from repro.workloads import get_benchmark

        system = ComposableSystem()
        active = system.configure("falconGPUs")
        job = TrainingJob(system.env, system.topology, system.host,
                          list(active.gpus), active.storage,
                          TrainingConfig(
                              benchmark=get_benchmark("bert-large"),
                              strategy=DistributedDataParallel()))
        out = GradientBucketing().run(job.step_plan, PassContext())
        assert validate_plan(out) == []
        assert len(out) < len(job.step_plan)


# -- overlap -----------------------------------------------------------------

class TestOverlapScheduling:
    def test_retimes_each_launch_one_slab_earlier(self):
        plan = _ddp_like_plan(world=1, buckets=3, bucket_bytes=1e6,
                              gate_interval=0.01)
        out = OverlapScheduling().run(plan, PassContext())
        assert validate_plan(out) == []
        # Ready times 10/20/30 ms -> launches 0/10/20 ms: collective k
        # launches when bucket k-1 was ready, the first extrapolates one
        # interval early (clamped at the anchor).
        seconds = [out.op(f"r0:gate{i}").seconds for i in range(3)]
        assert seconds == pytest.approx([0.0, 0.01, 0.02])

    def test_first_launch_never_precedes_the_anchor(self):
        # Gates at 10/50 ms: extrapolating a 40 ms interval before the
        # first would go negative — it clamps to 0 instead.
        b = PlanBuilder("p", world_size=1)
        fwd = _compute(b, 0, "fwd")
        for i, when in enumerate((0.01, 0.05)):
            gate = b.delay(0, f"gate{i}", seconds=when, deps=[fwd],
                           traced=False)
            b.collective(0, f"g{i}", "allreduce", 1e6, deps=[gate],
                         payload="grad")
        b.declare_conservation("grad", 2e6)
        out = OverlapScheduling().run(b.build(), PassContext())
        assert out.op("r0:gate0").seconds == 0.0
        assert out.op("r0:gate1").seconds == 0.01

    def test_single_gated_collective_untouched(self):
        plan = _ddp_like_plan(buckets=1)
        assert OverlapScheduling().run(plan, PassContext()) is plan

    def test_traced_delays_are_not_gates(self):
        b = PlanBuilder("p", world_size=1)
        fwd = _compute(b, 0, "fwd")
        for i in range(2):
            gate = b.delay(0, f"gate{i}", seconds=0.01 * (i + 1),
                           deps=[fwd])  # traced: a real modeled stall
            b.collective(0, f"g{i}", "allreduce", 1e6, deps=[gate],
                         payload="grad")
        b.declare_conservation("grad", 2e6)
        plan = b.build()
        assert OverlapScheduling().run(plan, PassContext()) is plan

    def test_shared_gate_is_not_retimed(self):
        # One gate feeding two collectives is a join point, not a
        # per-bucket ready signal.
        b = PlanBuilder("p", world_size=1)
        fwd = _compute(b, 0, "fwd")
        gate = b.delay(0, "gate", seconds=0.01, deps=[fwd],
                       traced=False)
        c0 = b.collective(0, "g0", "allreduce", 1e6, deps=[gate],
                          payload="grad")
        b.collective(0, "g1", "allreduce", 1e6, deps=[gate, c0],
                     payload="grad")
        b.declare_conservation("grad", 2e6)
        plan = b.build()
        assert OverlapScheduling().run(plan, PassContext()) is plan


# -- copy fusion -------------------------------------------------------------

class TestCopyFusion:
    def test_elides_zero_byte_copy_and_rewires(self):
        b = PlanBuilder("p", world_size=1)
        a = b.h2d(0, "in", 1e6, label="input")
        z = b.h2d(0, "pad", 0.0, label="input", deps=[a])
        _compute(b, 0, "fwd", deps=[z])
        out = CopyFusion().run(b.build(), PassContext())
        assert "r0:pad" not in out
        assert out.op("r0:fwd").deps == ("r0:in",)

    def test_fuses_same_endpoint_chain_into_head(self):
        b = PlanBuilder("p", world_size=1)
        a = b.h2d(0, "in", 1e6, label="input")
        c = b.h2d(0, "in2", 2e6, label="input", deps=[a])
        d = b.h2d(0, "in3", 4e6, label="input", deps=[c])
        _compute(b, 0, "fwd", deps=[d])
        out = CopyFusion().run(b.build(), PassContext())
        head = out.op("r0:in")
        assert head.bytes == 7e6
        assert head.fused == 3
        assert "r0:in2" not in out and "r0:in3" not in out
        assert out.op("r0:fwd").deps == ("r0:in",)

    def test_label_mismatch_blocks_fusion(self):
        b = PlanBuilder("p", world_size=1)
        a = b.h2d(0, "in", 1e6, label="input")
        b.h2d(0, "w", 2e6, label="weights", deps=[a])
        plan = b.build()
        assert CopyFusion().run(plan, PassContext()) is plan

    def test_fork_blocks_fusion(self):
        b = PlanBuilder("p", world_size=1)
        a = b.h2d(0, "in", 1e6, label="input")
        b.h2d(0, "in2", 2e6, label="input", deps=[a])
        _compute(b, 0, "fwd", deps=[a])  # a has two dependents
        plan = b.build()
        assert CopyFusion().run(plan, PassContext()) is plan

    def test_kind_mismatch_blocks_fusion(self):
        b = PlanBuilder("p", world_size=1)
        a = b.h2d(0, "in", 1e6, label="x")
        b.d2h(0, "out", 2e6, label="x", deps=[a])
        plan = b.build()
        assert CopyFusion().run(plan, PassContext()) is plan


# -- chunk sizing ------------------------------------------------------------

class _Paths:
    """Topology stub with per-pair measured bandwidth."""

    def __init__(self, default, **pairs):
        self.default = default
        self.pairs = pairs

    def path_bandwidth(self, src, dst):
        return self.pairs.get(f"{src}->{dst}", self.default)


def _one_collective_plan(comm="allreduce", nbytes=40e6, root=None):
    b = PlanBuilder("p", world_size=2)
    for rank in range(2):
        b.collective(rank, "grad", comm, nbytes, root=root,
                     payload="grad")
    b.declare_conservation("grad", 2 * nbytes)
    return b.build()


class TestCollectiveChunkSizing:
    def _ctx(self, topo):
        return PassContext(topology=topo, rank_nodes=["n0", "n1"])

    def test_no_topology_falls_back_to_default_chunk(self):
        out = CollectiveChunkSizing().run(_one_collective_plan(),
                                          PassContext())
        for op in out:
            assert op.chunk_bytes == 8e6

    def test_ring_kind_uses_bottleneck_neighbour_link(self):
        topo = _Paths(default=100e9, **{"n1->n0": 4e9})
        out = CollectiveChunkSizing().run(_one_collective_plan(),
                                          self._ctx(topo))
        # min(100, 4) GB/s * 1 ms = 4 MB chunks on every rank.
        for op in out:
            assert op.chunk_bytes == 4e6

    def test_rooted_kind_measures_root_to_leaf(self):
        topo = _Paths(default=100e9, **{"n1->n0": 6e9})
        plan = _one_collective_plan(comm="broadcast", root=1)
        out = CollectiveChunkSizing().run(plan, self._ctx(topo))
        for op in out:
            assert op.chunk_bytes == 6e6

    def test_chunk_clamped_and_capped_at_payload(self):
        topo = _Paths(default=500e9)  # 1 ms would be 500 MB
        out = CollectiveChunkSizing().run(
            _one_collective_plan(nbytes=40e6), self._ctx(topo))
        for op in out:
            assert op.chunk_bytes == 40e6  # 64 MB clamp, then payload

    def test_unmeasurable_path_falls_back(self):
        class Broken:
            def path_bandwidth(self, src, dst):
                raise KeyError(src)

        out = CollectiveChunkSizing().run(_one_collective_plan(),
                                          self._ctx(Broken()))
        for op in out:
            assert op.chunk_bytes == 8e6

    def test_already_annotated_plan_untouched(self):
        plan = CollectiveChunkSizing().run(_one_collective_plan(),
                                           PassContext())
        assert CollectiveChunkSizing().run(plan, PassContext()) is plan

    def test_rejects_non_positive_target(self):
        with pytest.raises(PassError):
            CollectiveChunkSizing(target_seconds=0.0)
