"""Vectorized batch evaluation: grouping, equivalence, fallback paths."""

import dataclasses

import pytest

from repro.plan import (
    LaneIncompatible,
    PlanBuilder,
    evaluate_batch,
    evaluate_plan,
    plan_structure_key,
)
from repro.plan.batched import _LaneResolver, _TapeEngine
from repro.telemetry import Tracer
from repro.telemetry.profile import scale_plan

from .test_fastpath import _compute, make_ctx, taxonomy_plan


def scaled_lanes(ctx, factors=(0.5, 0.75, 1.0, 1.25, 2.0)):
    plan = taxonomy_plan()
    return [(scale_plan(plan, "compute", f), ctx) for f in factors]


class TestStructureKey:
    def test_scaling_preserves_key(self):
        ctx = make_ctx()
        lanes = scaled_lanes(ctx)
        keys = {plan_structure_key(p, c) for p, c in lanes}
        assert len(keys) == 1

    def test_extra_op_changes_key(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        _compute(b, 0, "forward")
        one = b.build()
        b = PlanBuilder("step", world_size=1)
        f = _compute(b, 0, "forward")
        _compute(b, 0, "backward", deps=[f])
        two = b.build()
        assert plan_structure_key(one, ctx) != plan_structure_key(two, ctx)

    def test_zero_byte_short_circuit_changes_key(self):
        # A transfer under epsilon takes the no-flow path; lanes on the
        # two sides of the threshold must not share a tape.
        ctx = make_ctx(world=1)

        def plan(nbytes):
            b = PlanBuilder("step", world_size=1)
            b.h2d(0, "input", nbytes)
            return b.build()

        assert plan_structure_key(plan(1e6), ctx) != \
            plan_structure_key(plan(0.0), ctx)

    def test_separate_systems_same_key(self):
        # Structure is nominal (device/node names), so lanes built on
        # independent ComposableSystem instances still group.
        assert plan_structure_key(taxonomy_plan(), make_ctx()) == \
            plan_structure_key(taxonomy_plan(), make_ctx())


class TestEquivalence:
    def test_batched_matches_scalar_exactly(self):
        ctx = make_ctx()
        lanes = scaled_lanes(ctx)
        res = evaluate_batch(lanes, assert_equivalence=True)
        assert res.groups == 1
        assert res.batched_lanes == len(lanes)
        assert res.fallback_lanes == 0
        for (plan, c), timing in zip(lanes, res.timings):
            assert timing.mode == "batched"
            scalar = evaluate_plan(plan, c, mode="fastpath")
            # Replay drives the same float arithmetic in the same
            # order, so agreement is bit-exact, not just 1e-9.
            assert timing.op_times == scalar.op_times
            assert timing.makespan == scalar.makespan

    def test_tolerance_criterion(self):
        ctx = make_ctx()
        lanes = scaled_lanes(ctx)
        res = evaluate_batch(lanes)
        for (plan, c), timing in zip(lanes, res.timings):
            scalar = evaluate_plan(plan, c, mode="fastpath")
            for uid, (s, e) in timing.op_times.items():
                assert s == pytest.approx(scalar.op_times[uid][0],
                                          rel=1e-9, abs=1e-12)
                assert e == pytest.approx(scalar.op_times[uid][1],
                                          rel=1e-9, abs=1e-12)

    def test_empty_input(self):
        res = evaluate_batch([])
        assert res.timings == []
        assert res.groups == 0


class TestGrouping:
    def test_two_structures_two_groups(self):
        ctx = make_ctx()
        ctx1 = make_ctx(world=1)
        lanes = scaled_lanes(ctx, factors=(1.0, 2.0))
        b = PlanBuilder("solo", world_size=1)
        _compute(b, 0, "forward")
        solo = b.build()
        lanes += [(scale_plan(solo, "compute", f), ctx1)
                  for f in (1.0, 2.0)]
        res = evaluate_batch(lanes)
        assert res.groups == 2
        assert res.batched_lanes == 4

    def test_singleton_group_falls_back(self):
        ctx = make_ctx()
        res = evaluate_batch([(taxonomy_plan(), ctx)])
        assert res.groups == 1
        assert res.batched_lanes == 0
        assert res.fallback_lanes == 1
        assert res.timings[0].mode == "fastpath"

    def test_ineligible_lane_uses_fallback_mode(self):
        ctx = make_ctx()
        traced = make_ctx()
        traced.tracer = Tracer(traced.env)
        lanes = scaled_lanes(ctx, factors=(1.0, 2.0))
        lanes.append((taxonomy_plan(), traced))
        res = evaluate_batch(lanes, fallback="auto")
        assert res.batched_lanes == 2
        assert res.timings[2].mode == "executor"


def chain_plan(s1, s2):
    """Two delay->compute chains on one rank; delays set stream order."""
    b = PlanBuilder("step", world_size=1)
    d1 = b.delay(0, "stall-a", seconds=s1)
    _compute(b, 0, "a", deps=[d1])
    d2 = b.delay(0, "stall-b", seconds=s2)
    _compute(b, 0, "b", deps=[d2])
    return b.build()


class TestDivergence:
    def test_flipped_order_falls_back_scalar(self):
        ctx = make_ctx(world=1)
        lanes = [(chain_plan(0.1, 0.2), ctx),   # reference: a before b
                 (chain_plan(0.11, 0.2), ctx),  # same order -> batched
                 (chain_plan(0.2, 0.1), ctx)]   # flipped -> guard fires
        res = evaluate_batch(lanes)
        assert res.diverged == [2]
        assert res.batched_lanes == 2
        assert res.timings[2].mode == "fastpath"
        for (plan, c), timing in zip(lanes, res.timings):
            scalar = evaluate_plan(plan, c, mode="fastpath")
            assert timing.op_times == scalar.op_times

    def test_refused_reference_sends_group_scalar(self):
        # Back-to-back rendezvous joins trip the scalar engine's tie
        # refusal while *recording*; the whole group must fall back to
        # per-lane evaluation (which, under "auto", runs the executor).
        ctx0, ctx1 = make_ctx(world=1), make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        g = b.collective(0, "g1", "allreduce", 1e6)
        b.collective(0, "g2", "allreduce", 1e6, deps=[g])
        plan = b.build()
        res = evaluate_batch([(plan, ctx0), (plan, ctx1)],
                             fallback="auto")
        assert res.batched_lanes == 0
        assert res.fallback_lanes == 2
        assert all(t.mode == "executor" for t in res.timings)


class TestRatePrecondition:
    def test_capacity_mismatch_is_lane_incompatible(self):
        ctx_ref = make_ctx()
        ctx_slow = make_ctx()
        for link in ctx_slow.topology.links():
            link.spec = dataclasses.replace(
                link.spec, bandwidth=link.spec.bandwidth * 0.5)
        plan = taxonomy_plan()
        tape = _TapeEngine(plan, ctx_ref).run()
        with pytest.raises(LaneIncompatible, match="capacit"):
            _LaneResolver(tape, plan, ctx_slow).resolve()

    def test_capacity_mismatch_falls_back_via_api(self):
        ctx_ref = make_ctx()
        ctx_slow = make_ctx()
        for link in ctx_slow.topology.links():
            link.spec = dataclasses.replace(
                link.spec, bandwidth=link.spec.bandwidth * 0.5)
        plan = taxonomy_plan()
        lanes = [(plan, ctx_ref), (scale_plan(plan, "compute", 1.5),
                                   ctx_ref), (plan, ctx_slow)]
        res = evaluate_batch(lanes)
        assert res.batched_lanes == 2
        assert res.fallback_lanes == 1
        slow_scalar = evaluate_plan(plan, ctx_slow, mode="fastpath")
        assert res.timings[2].op_times == slow_scalar.op_times
