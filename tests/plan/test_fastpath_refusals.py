"""Every fast-path refusal must degrade, not fail: ``mode="auto"``
falls back to the event-loop executor and the engines agree.

The scalar engine refuses plans whose semantics it cannot prove it
preserves — stochastic jitter, FIFO admission ties, rendezvous ties,
watchdog races, storage-queue ties.  Refusal is only safe if the public
entry point turns it into an executor evaluation with the *same*
timings an explicit executor run produces; these tests pin that
contract for each refusal path.
"""

import dataclasses

import pytest

from repro.core import ComposableSystem
from repro.plan import (
    ExecutionContext,
    FastPathUnsupported,
    PlanBuilder,
    evaluate_plan,
    fastpath_schedule,
)
from repro.training import Communicator

from .test_fastpath import _compute, make_ctx


def assert_times_agree(a, b):
    assert a.op_times.keys() == b.op_times.keys()
    for uid, (s, e) in a.op_times.items():
        s2, e2 = b.op_times[uid]
        assert s == pytest.approx(s2, rel=1e-9, abs=1e-12), uid
        assert e == pytest.approx(e2, rel=1e-9, abs=1e-12), uid
    assert a.makespan == pytest.approx(b.makespan, rel=1e-9, abs=1e-12)


def assert_falls_back(plan_factory, ctx_factory, match):
    """The refusal fires, auto degrades to the executor, engines agree.

    Fresh contexts per evaluation: the executor leg advances env and
    device state, so the comparison run needs its own world.
    """
    with pytest.raises(FastPathUnsupported, match=match):
        fastpath_schedule(plan_factory(), ctx_factory())
    auto = evaluate_plan(plan_factory(), ctx_factory(), mode="auto")
    assert auto.mode == "executor"
    explicit = evaluate_plan(plan_factory(), ctx_factory(),
                             mode="executor")
    assert_times_agree(auto, explicit)
    return auto


class TestRefusalFallbacks:
    def test_stochastic_jitter(self):
        # An opaque sampler might draw differently on replay; the fast
        # path refuses rather than freeze one sample per op.
        def plan():
            b = PlanBuilder("step", world_size=1)
            f = _compute(b, 0, "forward", jittered=True)
            _compute(b, 0, "opt", deps=[f], flops=1e11)
            return b.build()

        # Constant sampler: the executor stays deterministic, so two
        # independent executor runs must also land identically.
        assert_falls_back(plan, lambda: make_ctx(world=1,
                                                 jitter=lambda: 1.0),
                          match="jitter")

    def test_fifo_admission_tie(self):
        # Two root computes on one rank are ready at t=0: the engine
        # cannot prove which one the stream admits first.
        def plan():
            b = PlanBuilder("step", world_size=1)
            _compute(b, 0, "a")
            _compute(b, 0, "b")
            return b.build()

        assert_falls_back(plan, lambda: make_ctx(world=1), match="FIFO")

    def test_rendezvous_tie(self):
        # Back-to-back collectives whose join arrivals coincide: the
        # rendezvous matcher cannot order the groups.
        def plan():
            b = PlanBuilder("step", world_size=2)
            for rank in range(2):
                b.collective(rank, "g1", "allreduce", 1e6)
                b.collective(rank, "g2", "allreduce", 1e6)
            return b.build()

        assert_falls_back(plan, make_ctx, match="rendezvous")

    def test_watchdog_race(self):
        # A watchdog shorter than a rank's join-to-completion wait: the
        # fast path cannot decide whether the simulated job survives,
        # so the event loop must deliver the verdict.  Here the race is
        # real — both the auto fallback and an explicit executor run
        # raise the *simulated* failure, not FastPathUnsupported.
        from repro.training import CollectiveTimeout

        def ctx():
            system = ComposableSystem()
            active = system.configure("localGPUs")
            gpus = list(active.gpus)[:2]
            comm = Communicator(system.env, system.topology,
                                [g.name for g in gpus], gpus=gpus,
                                watchdog=1e-12)
            return ExecutionContext(
                env=system.env, comm=comm, gpus=gpus,
                topology=system.topology,
                host_node=system.host.dram_node,
                storage=active.storage)

        def plan():
            b = PlanBuilder("step", world_size=2)
            for rank in range(2):
                # Skew the arrivals so the collective itself is not a
                # t=0 tie — the watchdog is the only refusal left.
                f = _compute(b, rank, "fwd", flops=1e12 * (1 + rank))
                b.collective(rank, "grad", "allreduce", 1e6, deps=[f])
            return b.build()

        with pytest.raises(FastPathUnsupported, match="watchdog"):
            fastpath_schedule(plan(), ctx())
        with pytest.raises(CollectiveTimeout):
            evaluate_plan(plan(), ctx(), mode="auto")
        with pytest.raises(CollectiveTimeout):
            evaluate_plan(plan(), ctx(), mode="executor")

    def test_storage_admission_tie(self):
        # Three root writes against a depth-1 command queue, all ready
        # at t=0: admission order is the event loop's to decide.
        def ctx():
            c = make_ctx(world=1)
            c.storage.spec = dataclasses.replace(c.storage.spec,
                                                 queue_depth=1)
            return c

        def plan():
            b = PlanBuilder("ckpt", world_size=1)
            for i in range(3):
                b.storage_write(0, f"shard-{i}", 1e6)
            return b.build()

        assert_falls_back(plan, ctx, match="admission")


class TestBatchedFallback:
    def test_refused_lanes_fall_back_inside_a_batch(self):
        # The batched evaluator inherits the same contract: a group
        # whose reference recording refuses degrades lane-by-lane.
        from repro.plan.batched import evaluate_batch

        def plan():
            b = PlanBuilder("step", world_size=2)
            for rank in range(2):
                b.collective(rank, "g1", "allreduce", 1e6)
                b.collective(rank, "g2", "allreduce", 1e6)
            return b.build()

        lanes = [(plan(), make_ctx()) for _ in range(3)]
        result = evaluate_batch(lanes, fallback="auto")
        assert result.batched_lanes == 0
        assert result.fallback_lanes == 3
        for timing in result.timings:
            assert timing.mode == "executor"
        assert_times_agree(result.timings[0], result.timings[1])
