"""Plan validation passes: structure, cycles, symmetry, conservation."""

import pytest

from repro.devices.gpu import Precision
from repro.plan import (
    Barrier,
    Compute,
    PlanBuilder,
    PlanValidationError,
    StepPlan,
    assert_valid,
    validate_plan,
)


def _compute(b, rank, name, deps=(), efficiency=0.5):
    return b.compute(rank, name, flops=1e9, hbm_bytes=1e6,
                     precision=Precision.FP16, efficiency=efficiency,
                     deps=deps)


def _symmetric_plan(world=2):
    b = PlanBuilder("sym", world_size=world)
    for rank in range(world):
        f = _compute(b, rank, "forward")
        g = b.collective(rank, "grad", "allreduce", 1e6, deps=[f],
                         payload="gradients")
        b.barrier(rank, "sync", deps=[g])
    b.declare_conservation("gradients", world * 1e6)
    return b.build()


class TestValidatePlan:
    def test_clean_plan_has_no_problems(self):
        assert validate_plan(_symmetric_plan()) == []

    def test_assert_valid_returns_the_plan(self):
        plan = _symmetric_plan()
        assert assert_valid(plan) is plan

    def test_assert_valid_raises_with_problem_list(self):
        b = PlanBuilder("bad", world_size=1)
        _compute(b, 0, "forward", efficiency=7.0)
        with pytest.raises(PlanValidationError, match="implausible"):
            assert_valid(b.build())


class TestStructurePass:
    def test_out_of_range_rank(self):
        op = Compute(uid="r5:x", rank=5, name="x", deps=(), flops=1.0,
                     hbm_bytes=0.0, precision=Precision.FP16,
                     efficiency=0.5)
        problems = validate_plan(StepPlan("p", 2, [op]))
        assert any("rank 5 out of range" in p for p in problems)

    def test_self_dependency(self):
        op = Barrier(uid="r0:b", rank=0, name="b", deps=("r0:b",))
        problems = validate_plan(StepPlan("p", 1, [op]))
        assert any("depends on itself" in p for p in problems)

    def test_implausible_efficiency(self):
        b = PlanBuilder("p", world_size=1)
        _compute(b, 0, "forward", efficiency=2.0)
        problems = validate_plan(b.build())
        assert any("implausible efficiency" in p for p in problems)

    def test_collective_root_out_of_range(self):
        b = PlanBuilder("p", world_size=2)
        for rank in range(2):
            b.collective(rank, "bc", "broadcast", 1e6, root=9)
        problems = validate_plan(b.build())
        assert any("root 9 out of range" in p for p in problems)


class TestCyclePass:
    def test_dependency_cycle_detected(self):
        a = Barrier(uid="r0:a", rank=0, name="a", deps=("r0:b",))
        c = Barrier(uid="r0:b", rank=0, name="b", deps=("r0:a",))
        problems = validate_plan(StepPlan("p", 1, [a, c]))
        assert any("cycle" in p for p in problems)

    def test_cross_rank_dag_is_fine(self):
        # Pipeline-style hand-off: r1 waits on r0's op.
        b = PlanBuilder("pipe", world_size=2)
        f0 = _compute(b, 0, "fwd")
        send = b.p2p(0, "send", 1, 1e6, deps=[f0])
        _compute(b, 1, "fwd", deps=[send])
        assert validate_plan(b.build()) == []


class TestRankSymmetryPass:
    def test_count_mismatch(self):
        b = PlanBuilder("p", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)
        problems = validate_plan(b.build())
        assert any("rank 1 issues 0" in p for p in problems)

    def test_kind_divergence_in_slot(self):
        b = PlanBuilder("p", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)
        b.collective(1, "grad", "reduce_scatter", 1e6)
        problems = validate_plan(b.build())
        assert any("slot 0 diverges" in p for p in problems)

    def test_bytes_divergence_in_slot(self):
        b = PlanBuilder("p", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)
        b.collective(1, "grad", "allreduce", 2e6)
        problems = validate_plan(b.build())
        assert any("slot 0 diverges" in p for p in problems)


class TestConservationPass:
    def test_sum_mismatch_flagged(self):
        b = PlanBuilder("p", world_size=2)
        for rank in range(2):
            b.collective(rank, "grad", "allreduce", 1e6,
                         payload="gradients")
        b.declare_conservation("gradients", 3e6)  # plan only carries 2e6
        problems = validate_plan(b.build())
        assert any("bytes-conservation" in p and "gradients" in p
                   for p in problems)

    def test_tagged_payload_without_declaration_flagged(self):
        b = PlanBuilder("p", world_size=1)
        b.h2d(0, "in", 1e6, payload="inputs")
        b.declare_conservation("gradients", 0.0)
        problems = validate_plan(b.build())
        assert any("no declared total" in p for p in problems)

    def test_within_relative_tolerance(self):
        b = PlanBuilder("p", world_size=1)
        b.collective(0, "grad", "allreduce", 1e6 * (1 + 1e-9),
                     payload="gradients")
        b.declare_conservation("gradients", 1e6)
        assert validate_plan(b.build()) == []


class TestCompiledStrategyPlans:
    """The real compilers must emit plans every pass accepts."""

    @pytest.mark.parametrize("strategy_name",
                             ["dp", "ddp", "sharded", "pipeline"])
    def test_all_strategies_validate(self, strategy_name):
        from repro.core import ComposableSystem
        from repro.training import (
            DataParallel,
            DistributedDataParallel,
            PipelineParallel,
            ShardedDataParallel,
            TrainingConfig,
            TrainingJob,
        )
        classes = {"dp": DataParallel, "ddp": DistributedDataParallel,
                   "sharded": ShardedDataParallel,
                   "pipeline": PipelineParallel}
        from repro.workloads import get_benchmark

        system = ComposableSystem()
        active = system.configure("localGPUs")
        config = TrainingConfig(benchmark=get_benchmark("bert-large"),
                                strategy=classes[strategy_name]())
        job = TrainingJob(system.env, system.topology, system.host,
                          list(active.gpus), active.storage, config)
        assert validate_plan(job.step_plan) == []
        assert job.step_plan.meta["strategy"] == strategy_name
        # The checkpoint program must be clean too.
        assert validate_plan(job.checkpoint_plan) == []
