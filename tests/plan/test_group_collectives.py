"""Grouped (subgroup) collectives: IR validation, subgroup communicator
plumbing, executor/fast-path rendezvous, and the validator's
per-communicator rank-symmetry checks.

Subgroup collectives are what tensor/2D parallelism compile to: a
``group`` tuple of world rank indices restricts the rendezvous to those
members, with ``root`` still expressed as a world rank.  These tests
exercise the machinery directly on small hand-built plans, independent
of the strategy compilers.
"""

import pytest

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import (
    ExecutionContext,
    FastPathUnsupported,
    PlanBuilder,
    PlanError,
    evaluate_plan,
    fastpath_schedule,
    validate_plan,
)
from repro.plan.validate import sync_sequences
from repro.training import CollectiveError, Communicator


def make_ctx(world=4):
    system = ComposableSystem()
    active = system.configure("localGPUs")
    gpus = list(active.gpus)[:world]
    comm = Communicator(system.env, system.topology,
                        [g.name for g in gpus], gpus=gpus)
    ctx = ExecutionContext(env=system.env, comm=comm, gpus=gpus,
                          topology=system.topology,
                          host_node=system.host.dram_node,
                          storage=active.storage)
    return system, ctx


def _compute(b, rank, name, deps=()):
    return b.compute(rank, name, flops=1e11, hbm_bytes=0.0,
                     precision=Precision.FP16, efficiency=0.5,
                     deps=deps)


def grouped_plan(world=4):
    """Two disjoint pair-groups, then a world allreduce — the 2D shape."""
    b = PlanBuilder("grouped", world_size=world)
    half = world // 2
    for rank in range(world):
        group = tuple(range(half)) if rank < half \
            else tuple(range(half, world))
        f = _compute(b, rank, "fwd")
        g = b.collective(rank, "tp-gather", "all_gather", 4e6,
                         group=group, deps=[f])
        r = b.collective(rank, "tp-bcast", "broadcast", 2e6,
                         root=group[0], group=group, deps=[g])
        b.collective(rank, "dp-allreduce", "allreduce", 8e6, deps=[r])
    return b.build()


# -- builder validation ------------------------------------------------------

class TestBuilderGroupValidation:
    def build(self, **kwargs):
        b = PlanBuilder("p", world_size=4)
        f = _compute(b, 0, "fwd")
        b.collective(0, "c", "allreduce", 1e6, deps=[f], **kwargs)

    def test_unsorted_group_rejected(self):
        with pytest.raises(PlanError, match="sorted"):
            self.build(group=(2, 0))

    def test_duplicate_member_rejected(self):
        with pytest.raises(PlanError, match="sorted|unique"):
            self.build(group=(0, 0, 2))

    def test_out_of_range_member_rejected(self):
        with pytest.raises(PlanError, match="out-of-range"):
            self.build(group=(0, 7))

    def test_issuing_rank_must_be_member(self):
        with pytest.raises(PlanError, match="not in its group"):
            self.build(group=(1, 2))

    def test_root_must_be_member(self):
        with pytest.raises(PlanError, match="root 3 not in group"):
            self.build(group=(0, 1), root=3)

    def test_valid_group_accepted(self):
        self.build(group=(0, 1), root=1)


# -- communicator subgroups --------------------------------------------------

class TestSubgroupCommunicator:
    def test_subgroup_is_cached_per_member_tuple(self):
        _system, ctx = make_ctx()
        child = ctx.comm.subgroup((0, 1))
        assert ctx.comm.subgroup((0, 1)) is child
        assert child.world_size == 2
        assert child.ranks == [ctx.comm.ranks[0], ctx.comm.ranks[1]]
        other = ctx.comm.subgroup((2, 3))
        assert other is not child

    def test_subgroup_rejects_bad_member_lists(self):
        _system, ctx = make_ctx()
        with pytest.raises(CollectiveError):
            ctx.comm.subgroup((1, 0))
        with pytest.raises(CollectiveError):
            ctx.comm.subgroup((0, 9))

    def test_abort_cascades_to_subgroups(self):
        _system, ctx = make_ctx()
        child = ctx.comm.subgroup((0, 2))
        ctx.comm.abort()
        assert child.closed


# -- engines -----------------------------------------------------------------

class TestGroupedExecution:
    def test_fastpath_matches_executor_on_grouped_plan(self):
        _system, ctx = make_ctx()
        plan = grouped_plan()
        timing = evaluate_plan(plan, ctx, assert_equivalence=True)
        assert timing.mode == "fastpath"
        assert timing.makespan > 0.0

    def test_disjoint_groups_overlap_in_time(self):
        # The two pair-groups share no ranks, so their collectives
        # rendezvous independently — group (2, 3) must not wait for
        # group (0, 1)'s ops (world-wide matching would serialize or
        # stall them).
        _system, ctx = make_ctx()
        plan = grouped_plan()
        timing = fastpath_schedule(plan, ctx)
        left = timing.op_times["r0:tp-gather"]
        right = timing.op_times["r2:tp-gather"]
        assert left[0] < right[1] and right[0] < left[1]

    def test_same_instant_joins_on_one_communicator_refused(self):
        # Two collectives on the *same* communicator joined at the same
        # instant are ambiguous for the fast path's rendezvous matching.
        _system, ctx = make_ctx(world=2)
        b = PlanBuilder("ambiguous", world_size=2)
        for rank in range(2):
            f = _compute(b, rank, "fwd")
            b.collective(rank, "a", "allreduce", 1e6, deps=[f])
            b.collective(rank, "b", "allreduce", 1e6, deps=[f])
        with pytest.raises(FastPathUnsupported, match="ambiguous"):
            fastpath_schedule(b.build(), ctx)

    def test_same_instant_joins_on_different_communicators_allowed(self):
        # ...but different communicators have independent matching —
        # the shape a 2D step's tp/dp chain produces.
        _system, ctx = make_ctx(world=2)
        b = PlanBuilder("split", world_size=2)
        for rank in range(2):
            f = _compute(b, rank, "fwd")
            b.collective(rank, "pair", "allreduce", 1e6, group=(0, 1),
                         deps=[f])
            b.collective(rank, "world", "allreduce", 1e6, deps=[f])
        timing = evaluate_plan(b.build(), ctx, assert_equivalence=True)
        assert timing.makespan > 0.0


# -- validator ---------------------------------------------------------------

class TestGroupValidation:
    def test_grouped_plan_is_clean(self):
        assert validate_plan(grouped_plan()) == []

    def test_sync_sequences_key_by_communicator(self):
        seqs = sync_sequences(grouped_plan())
        assert set(seqs) == {None, (0, 1), (2, 3)}
        assert set(seqs[(0, 1)]) == {0, 1}
        assert len(seqs[(0, 1)][0]) == 2   # tp-gather, tp-bcast
        assert len(seqs[None][0]) == 1     # dp-allreduce

    def test_group_member_missing_op_is_flagged(self):
        b = PlanBuilder("lopsided", world_size=4)
        for rank in range(4):
            f = _compute(b, rank, "fwd")
            if rank != 1:
                grp = (0, 1) if rank < 2 else (2, 3)
                if rank in grp:
                    b.collective(rank, "g", "all_gather", 1e6,
                                 group=grp, deps=[f])
        problems = validate_plan(b.build())
        assert any("rank-symmetry" in p for p in problems)

    def test_non_member_issuing_on_group_is_flagged(self):
        # Hand-construct the stray op (the builder would refuse it).
        from dataclasses import replace

        plan = grouped_plan()
        stray = None
        ops = []
        for op in plan.ops:
            if op.uid == "r2:tp-gather":
                stray = replace(op, group=(0, 1))
                ops.append(stray)
            else:
                ops.append(op)
        from repro.plan import StepPlan

        bad = StepPlan(plan.name, plan.world_size, ops, plan.meta)
        problems = validate_plan(bad)
        assert any("not a member" in p or "rank-symmetry" in p
                   for p in problems)
