"""Property-based plan-conformance harness for the optimization passes.

Generates random *valid* plans — bounded world sizes, shared rendezvous
schedules, gated and chained collectives, fusable copy chains including
zero-byte copies — and asserts that every registered pass (and the full
default pipeline) preserves the plan contract:

- the rewritten plan still passes every validation pass
  (structure, acyclicity, rank symmetry, bytes conservation);
- total bytes per payload tag are conserved exactly;
- each rank's rendezvous sequence is *work-equivalent*: expanding every
  collective into its ``fused`` constituents reproduces the original
  per-rank (kind, root, payload, group) sequence, so no communication
  was invented, lost, or reordered across a barrier.

Two plan sources feed the properties: the synthetic generator below
(which also draws *grouped* collectives over random rank subsets, the
shape tensor/2D parallelism emits), and the real compilers — every
strategy in :data:`repro.training.STRATEGY_REGISTRY` compiled at random
small world sizes and accumulation factors.
"""

import functools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.gpu import Precision
from repro.plan import (
    Barrier,
    Collective,
    D2HCopy,
    H2DCopy,
    P2PCopy,
    PlanBuilder,
    validate_plan,
)
from repro.plan.passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    PassContext,
    PassManager,
    resolve_passes,
)
from repro.training import (
    AMP_POLICY,
    CompileContext,
    STRATEGY_REGISTRY,
    StepCosts,
)

_COPY_TYPES = (H2DCopy, D2HCopy, P2PCopy)

# -- random-plan generator ---------------------------------------------------

_SYNC_KINDS = ("allreduce", "reduce_scatter", "all_gather", "broadcast",
               "barrier")
_SLOT_BYTES = (0.0, 1e5, 4e6, 16e6, 40e6)


@st.composite
def _sync_schedule(draw, world):
    """A shared rendezvous schedule; each slot is issued in order by its
    communicator's members (the whole world, or a drawn rank subset)."""
    n = draw(st.integers(min_value=0, max_value=7))
    slots = []
    for _ in range(n):
        kind = draw(st.sampled_from(_SYNC_KINDS))
        group = None
        if kind != "barrier" and world > 1 and draw(st.booleans()):
            members = draw(st.lists(
                st.integers(min_value=0, max_value=world - 1),
                min_size=1, max_size=world, unique=True))
            group = tuple(sorted(members))
        slots.append({
            "kind": kind,
            "bytes": draw(st.sampled_from(_SLOT_BYTES)),
            "payload": draw(st.sampled_from([None, "gradients"])),
            "gated": draw(st.booleans()),
            "root": (group[0] if group is not None else 0)
            if kind == "broadcast" else None,
            "group": group,
        })
    return slots


@st.composite
def plans(draw):
    """A random valid plan shaped like the strategy compilers' output:
    an input-copy chain, forward compute, a rank-symmetric rendezvous
    schedule (optionally gated by untraced bucket-ready delays), and an
    optimizer step."""
    world = draw(st.integers(min_value=1, max_value=3))
    slots = draw(_sync_schedule(world))
    copy_bytes = draw(st.lists(st.sampled_from([0.0, 0.0, 2e6, 8e6]),
                               min_size=0, max_size=4))
    gate_base = draw(st.floats(min_value=1e-3, max_value=5e-2))

    b = PlanBuilder("hyp", world_size=world)
    totals: dict = {}
    for rank in range(world):
        prev = b.h2d(rank, "input", 1e6, label="input")
        for i, nbytes in enumerate(copy_bytes):
            prev = b.h2d(rank, f"chunk{i}", nbytes, label="input",
                         deps=[prev])
        fwd = b.compute(rank, "fwd", flops=1e9, hbm_bytes=1e6,
                        precision=Precision.FP16, efficiency=0.5,
                        deps=[prev])
        anchor = fwd
        for i, slot in enumerate(slots):
            if slot["kind"] == "barrier":
                anchor = b.barrier(rank, f"bar{i}", deps=[anchor])
                continue
            if slot["group"] is not None and rank not in slot["group"]:
                continue
            deps = [anchor]
            if slot["gated"]:
                # DDP-style bucket gate: untraced, anchored on fwd, the
                # collective is its sole dependent.
                deps = [b.delay(rank, f"gate{i}",
                                seconds=gate_base * (i + 1),
                                deps=[fwd], traced=False)]
            uid = b.collective(rank, f"coll{i}", slot["kind"],
                               slot["bytes"], root=slot["root"],
                               payload=slot["payload"],
                               group=slot["group"], deps=deps)
            if slot["payload"] is not None:
                totals[slot["payload"]] = (totals.get(slot["payload"],
                                                      0.0)
                                           + slot["bytes"])
            if not slot["gated"]:
                anchor = uid
        b.compute(rank, "opt", flops=1e8, hbm_bytes=1e5,
                  precision=Precision.FP32, efficiency=0.5,
                  deps=[anchor])
    for payload, total in totals.items():
        b.declare_conservation(payload, total)
    return b.build()


# -- observables -------------------------------------------------------------

def _payload_totals(plan):
    totals: dict = {}
    for op in plan:
        payload = getattr(op, "payload", None)
        if payload is not None:
            totals[payload] = totals.get(payload, 0.0) + op.bytes
    return totals


def _comm_keys(plan):
    keys = set()
    for op in plan:
        if isinstance(op, (Collective, Barrier)):
            keys.add(getattr(op, "group", None))
    return keys


def _expanded_sync_seq(plan, rank, key=None):
    """The rank's rendezvous sequence on one communicator, with fused
    ops expanded back into their constituents — the pass-invariant view
    of its communication.  Sequences are per communicator because
    rendezvous matching is: passes may legally commute *concurrent* ops
    of different communicators past each other, but never reorder
    within one."""
    seq = []
    for op in plan.by_rank(rank):
        if isinstance(op, Collective) \
                and getattr(op, "group", None) == key:
            seq.extend([(op.comm, op.root, op.payload, op.group)]
                       * max(1, op.fused))
        elif isinstance(op, Barrier) and key is None:
            seq.append(("barrier", None, None, None))
    return seq


def _assert_conformant(before, after):
    problems = validate_plan(after)
    assert problems == [], problems
    b_totals, a_totals = _payload_totals(before), _payload_totals(after)
    assert set(b_totals) == set(a_totals)
    for payload, total in b_totals.items():
        assert math.isclose(a_totals[payload], total, rel_tol=1e-9), \
            payload
    assert _comm_keys(after) <= _comm_keys(before)
    for key in _comm_keys(before):
        members = range(before.world_size) if key is None else key
        for rank in members:
            assert (_expanded_sync_seq(after, rank, key)
                    == _expanded_sync_seq(before, rank, key)), \
                f"rank {rank} on {key or 'world'}"


# -- properties --------------------------------------------------------------

@pytest.mark.parametrize("pass_name", sorted(PASS_REGISTRY))
class TestEveryPassPreservesTheContract:
    @settings(max_examples=25, deadline=None)
    @given(plan=plans())
    def test_invariants_bytes_and_sync_sequence(self, pass_name, plan):
        out = PASS_REGISTRY[pass_name]().run(plan, PassContext())
        _assert_conformant(plan, out)

    @settings(max_examples=10, deadline=None)
    @given(plan=plans())
    def test_never_grows_the_plan(self, pass_name, plan):
        out = PASS_REGISTRY[pass_name]().run(plan, PassContext())
        assert len(out) <= len(plan)


class TestPipelineProperties:
    @settings(max_examples=25, deadline=None)
    @given(plan=plans())
    def test_default_pipeline_conformant_end_to_end(self, plan):
        manager = PassManager(resolve_passes("all"))
        out = manager.run(plan, PassContext())  # re-validates internally
        _assert_conformant(plan, out)
        assert out.meta["opt"]
        assert len(manager.reports) == len(DEFAULT_PIPELINE)

    @settings(max_examples=25, deadline=None)
    @given(plan=plans())
    def test_copy_fusion_leaves_no_dead_zero_byte_copies(self, plan):
        out = PASS_REGISTRY["copy-fusion"]().run(plan, PassContext())
        for op in out:
            if isinstance(op, _COPY_TYPES) and len(op.deps) <= 1:
                assert op.bytes > 0

    @settings(max_examples=25, deadline=None)
    @given(plan=plans())
    def test_chunk_sizing_is_idempotent(self, plan):
        sizer = PASS_REGISTRY["chunk-size"]()
        once = sizer.run(plan, PassContext())
        twice = sizer.run(once, PassContext())
        assert [(op.uid, getattr(op, "chunk_bytes", None))
                for op in twice.ops] \
            == [(op.uid, getattr(op, "chunk_bytes", None))
                for op in once.ops]

    @settings(max_examples=15, deadline=None)
    @given(plan=plans())
    def test_overlap_only_retimes_gates(self, plan):
        out = PASS_REGISTRY["overlap"]().run(plan, PassContext())
        before = {op.uid: op for op in plan}
        for op in out:
            original = before[op.uid]
            if type(op) is not type(original):
                raise AssertionError(op.uid)
            if isinstance(op, Collective):
                assert op.bytes == original.bytes


class _FlatTopology:
    """Every path measures the same bandwidth."""

    def __init__(self, gbps):
        self.gbps = gbps

    def path_bandwidth(self, src, dst):
        return self.gbps


# -- real compiler output: every registered strategy ------------------------

@functools.lru_cache(maxsize=None)
def _compile_env(world):
    """Shared (costs, gpus) for compiling strategy plans at ``world``."""
    from repro.core import ComposableSystem
    from repro.workloads import get_benchmark

    system = ComposableSystem()
    active = system.configure("localGPUs")
    gpus = list(active.gpus)[:world]
    bench = get_benchmark("bert-base")
    model = bench.build()
    costs = StepCosts.for_benchmark(
        model, AMP_POLICY, bench.efficiency[Precision.FP16],
        batch_per_gpu=8)
    return costs, gpus


@functools.lru_cache(maxsize=None)
def _strategy_plan(name, world, accumulation):
    costs, gpus = _compile_env(world)
    strategy = STRATEGY_REGISTRY[name]()
    return strategy.compile_step(CompileContext(
        costs=costs, world_size=world, accumulation=accumulation,
        gpus=gpus))


@pytest.mark.parametrize("pass_name", sorted(PASS_REGISTRY))
class TestEveryPassOnEveryStrategy:
    """The conformance contract over *real* compiler output: plans drawn
    from every registered strategy (grouped collectives included) at
    random small world sizes and accumulation factors."""

    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(STRATEGY_REGISTRY)),
           world=st.sampled_from([2, 4]),
           accumulation=st.sampled_from([1, 2]))
    def test_strategy_plans_conform(self, pass_name, name, world,
                                    accumulation):
        plan = _strategy_plan(name, world, accumulation)
        out = PASS_REGISTRY[pass_name]().run(plan, PassContext())
        _assert_conformant(plan, out)


@pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
def test_default_pipeline_on_every_strategy(name):
    """End-to-end default pipeline over each registered strategy's plan
    at the largest test world (4 ranks: two 2D tensor groups)."""
    plan = _strategy_plan(name, 4, 2)
    problems = validate_plan(plan)
    assert problems == [], problems
    out = PassManager(resolve_passes("all")).run(plan, PassContext())
    _assert_conformant(plan, out)


class TestChunkSizingWithTopology:
    @settings(max_examples=25, deadline=None)
    @given(plan=plans(), bw=st.sampled_from([2e9, 12e9, 120e9]))
    def test_chunks_track_measured_bandwidth(self, plan, bw):
        ctx = PassContext(topology=_FlatTopology(bw),
                          rank_nodes=[f"node{r}"
                                      for r in range(plan.world_size)])
        out = PASS_REGISTRY["chunk-size"]().run(plan, ctx)
        # 1 ms of streaming on the bottleneck link, clamped to
        # [1 MB, 64 MB], never above the payload.
        expected = min(max(bw * 1e-3, 1e6), 64e6)
        for op in out:
            if isinstance(op, Collective) and op.bytes > 0:
                # What matters is the *communicator* size: a grouped
                # collective streams over its member subset only.
                size = len(op.group) if op.group is not None \
                    else plan.world_size
                if size < 2:
                    assert op.chunk_bytes == min(8e6, op.bytes)
                else:
                    assert op.chunk_bytes == min(expected, op.bytes)
            elif isinstance(op, Collective):
                assert op.chunk_bytes is None
