"""Generic plan executor on real devices: ordering, failure, cancel."""

import pytest

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import ExecutionContext, PlanBuilder, PlanError, PlanExecution
from repro.plan.executor import _merge_intervals, _subtract_intervals
from repro.training import CollectiveError, Communicator


def make_ctx(world=2, jitter=None):
    system = ComposableSystem()
    active = system.configure("localGPUs")
    gpus = list(active.gpus)[:world]
    comm = Communicator(system.env, system.topology,
                        [g.name for g in gpus], gpus=gpus)
    kwargs = {} if jitter is None else {"jitter": jitter}
    return ExecutionContext(env=system.env, comm=comm, gpus=gpus,
                            topology=system.topology,
                            host_node=system.host.dram_node,
                            storage=active.storage, **kwargs)


def run_plan(plan, ctx, ranks=None):
    execution = PlanExecution(plan, ctx)
    for rank in ranks or range(plan.world_size):
        ctx.env.process(execution.run_rank(rank))
    ctx.env.run()
    return execution


def _compute(b, rank, name, deps=(), flops=1e12, jittered=False):
    return b.compute(rank, name, flops=flops, hbm_bytes=0.0,
                     precision=Precision.FP16, efficiency=0.5,
                     jittered=jittered, deps=deps)


class TestExecution:
    def test_full_taxonomy_runs_and_orders_by_deps(self):
        ctx = make_ctx()
        b = PlanBuilder("step", world_size=2)
        uids = {}
        for rank in range(2):
            h = b.h2d(rank, "input", 1e6)
            f = _compute(b, rank, "forward", deps=[h])
            g = b.collective(rank, "grad", "allreduce", 1e6, deps=[f])
            uids[rank] = {"input": h, "forward": f, "grad": g}
        # Rank 0 also checkpoints; rank 1 just rejoins at the barrier.
        d = b.d2h(0, "ckpt-d2h", 1e6, deps=[uids[0]["grad"]])
        w = b.storage_write(0, "ckpt-write", 1e6, deps=[d])
        r = b.storage_read(0, "reload", 1e6, deps=[w])
        s0 = b.barrier(0, "sync", deps=[r])
        s1 = b.barrier(1, "sync", deps=[uids[1]["grad"]])
        execution = run_plan(b.build(), ctx)

        assert execution.all_ranks_done
        for rank in range(2):
            h0, h1 = execution.op_times(uids[rank]["input"])
            f0, f1 = execution.op_times(uids[rank]["forward"])
            assert h1 > h0 and f0 >= h1 and f1 > f0
        # The collective is a rendezvous: both ranks end together.
        assert execution.op_times(uids[0]["grad"])[1] == \
            execution.op_times(uids[1]["grad"])[1]
        d0, d1 = execution.op_times(d)
        w0, w1 = execution.op_times(w)
        assert w0 >= d1 and w1 > w0
        # Rank 1 stalls at the barrier until rank 0's storage round-trip.
        assert execution.op_times(s1)[1] == execution.op_times(s0)[1]
        assert execution.op_times(s1)[1] >= execution.op_times(r)[1]

    def test_cross_rank_p2p_dependency(self):
        ctx = make_ctx()
        b = PlanBuilder("pipe", world_size=2)
        f0 = _compute(b, 0, "fwd-stage0")
        send = b.p2p(0, "send-act", 1, 1e6, deps=[f0])
        f1 = _compute(b, 1, "fwd-stage1", deps=[send])
        execution = run_plan(b.build(), ctx)
        assert execution.op_times(f1)[0] >= execution.op_times(send)[1]

    def test_delay_elapsed_fraction_scales_with_rank_elapsed(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        f = _compute(b, 0, "forward")
        d = b.delay(0, "step-overhead", elapsed_fraction=1.0, deps=[f])
        execution = run_plan(b.build(), ctx)
        f0, f1 = execution.op_times(f)
        d0, d1 = execution.op_times(d)
        assert d1 - d0 == pytest.approx(f1 - f0, rel=1e-9)

    def test_jitter_applies_only_to_jittered_computes(self):
        ctx = make_ctx(world=1, jitter=lambda: 2.0)
        b = PlanBuilder("step", world_size=1)
        noisy = _compute(b, 0, "forward", jittered=True)
        clean = _compute(b, 0, "optimizer", deps=[noisy])
        execution = run_plan(b.build(), ctx)
        n0, n1 = execution.op_times(noisy)
        c0, c1 = execution.op_times(clean)
        assert (n1 - n0) == pytest.approx(2.0 * (c1 - c0), rel=1e-9)

    def test_op_times_raises_before_completion(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        _compute(b, 0, "forward")
        execution = PlanExecution(b.build(), ctx)
        with pytest.raises(PlanError, match="has not completed"):
            execution.op_times("r0:forward")


class TestFailureAndCancel:
    def test_collective_error_propagates_out_of_run_rank(self):
        # Deliberately rank-asymmetric: the validator rejects this plan,
        # so stamp it as validated to sneak past the executor's upfront
        # check — the point is that the *communicator's* own runtime
        # error still surfaces for plans that dodge static validation.
        ctx = make_ctx()
        b = PlanBuilder("bad", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)
        b.collective(1, "grad", "reduce_scatter", 1e6)
        plan = b.build()
        plan.validated = True
        with pytest.raises(CollectiveError, match="mismatch"):
            run_plan(plan, ctx)

    def test_cancel_abandons_inflight_ops(self):
        ctx = make_ctx()
        b = PlanBuilder("step", world_size=2)
        for rank in range(2):
            b.collective(rank, "grad", "allreduce", 1e9)
        execution = PlanExecution(b.build(), ctx)
        # Only rank 0 runs: its collective can never rendezvous.
        ctx.env.process(execution.run_rank(0))

        def chaos():
            yield ctx.env.timeout(1.0)
            execution.cancel()

        ctx.env.process(chaos())
        ctx.env.run()  # returns: the stuck op was interrupted away
        assert not execution.all_ranks_done
        with pytest.raises(PlanError):
            execution.op_times("r0:grad")


class TestIntervalHelpers:
    def test_merge(self):
        assert _merge_intervals([(3, 4), (0, 1), (0.5, 2)]) == \
            [(0, 2), (3, 4)]

    def test_subtract(self):
        base = [(0.0, 10.0)]
        holes = [(2.0, 3.0), (5.0, 7.0)]
        assert _subtract_intervals(base, holes) == \
            [(0.0, 2.0), (3.0, 5.0), (7.0, 10.0)]

    def test_subtract_covering_hole(self):
        assert _subtract_intervals([(1.0, 2.0)], [(0.0, 5.0)]) == []
