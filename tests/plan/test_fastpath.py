"""Fast-path plan evaluation: eligibility, equivalence, refusal paths."""

import pytest

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import (
    ExecutionContext,
    FastPathUnsupported,
    PlanBuilder,
    PlanTiming,
    evaluate_plan,
    fastpath_schedule,
    fastpath_support,
)
from repro.plan.fastpath import _assert_equal, _executor_timing
from repro.telemetry import Tracer
from repro.training import Communicator


def make_ctx(world=2, jitter=None, storage=True):
    system = ComposableSystem()
    active = system.configure("localGPUs")
    gpus = list(active.gpus)[:world]
    comm = Communicator(system.env, system.topology,
                        [g.name for g in gpus], gpus=gpus)
    kwargs = {} if jitter is None else {"jitter": jitter}
    return ExecutionContext(env=system.env, comm=comm, gpus=gpus,
                            topology=system.topology,
                            host_node=system.host.dram_node,
                            storage=active.storage if storage else None,
                            **kwargs)


def _compute(b, rank, name, deps=(), flops=1e12, jittered=False):
    return b.compute(rank, name, flops=flops, hbm_bytes=0.0,
                     precision=Precision.FP16, efficiency=0.5,
                     jittered=jittered, deps=deps)


def taxonomy_plan(world=2):
    """One plan touching every op kind (the executor test's shape)."""
    b = PlanBuilder("step", world_size=world)
    for rank in range(world):
        h = b.h2d(rank, "input", 1e6)
        f = _compute(b, rank, "forward", deps=[h])
        g = b.collective(rank, "grad", "allreduce", 1e6, deps=[f])
        o = b.collective(rank, "gather", "all_gather", 1e6, deps=[g])
        s = b.collective(rank, "shard", "reduce_scatter", 1e6, deps=[o])
        c = b.collective(rank, "bcast", "broadcast", 1e6, root=0,
                         deps=[s])
        r = b.collective(rank, "stats", "reduce", 1e6, root=1, deps=[c])
        d = b.delay(rank, "overhead", seconds=1e-4,
                    elapsed_fraction=0.01, deps=[r])
        if rank == 0:
            dh = b.d2h(0, "ckpt-d2h", 1e6, deps=[d])
            w = b.storage_write(0, "ckpt-write", 1e6, deps=[dh])
            rd = b.storage_read(0, "reload", 1e6, deps=[w])
            b.barrier(0, "sync", deps=[rd])
        else:
            p = b.p2p(rank, "send-act", 0, 1e6, deps=[d])
            b.barrier(rank, "sync", deps=[p])
    return b.build()


class TestSupport:
    def test_eligible_by_default(self):
        ctx = make_ctx()
        assert fastpath_support(taxonomy_plan(), ctx) is None

    def test_enabled_tracer_forces_executor(self):
        ctx = make_ctx()
        ctx.tracer = Tracer(ctx.env)
        reason = fastpath_support(taxonomy_plan(), ctx)
        assert reason is not None and "tracing" in reason
        with pytest.raises(FastPathUnsupported):
            fastpath_schedule(taxonomy_plan(), ctx)

    def test_traced_topology_forces_executor(self):
        ctx = make_ctx()
        ctx.topology.tracer = Tracer(ctx.env)
        assert "topology" in fastpath_support(taxonomy_plan(), ctx)

    def test_missing_communicator(self):
        ctx = make_ctx()
        ctx.comm = None
        assert "communicator" in fastpath_support(taxonomy_plan(), ctx)

    def test_missing_storage(self):
        ctx = make_ctx(storage=False)
        assert "storage" in fastpath_support(taxonomy_plan(), ctx)

    def test_stochastic_jitter_blocks_jittered_computes(self):
        ctx = make_ctx(jitter=lambda: 1.0)  # unknown sampler
        b = PlanBuilder("step", world_size=1)
        _compute(b, 0, "forward", jittered=True)
        assert "jitter" in fastpath_support(b.build(), ctx)
        # Non-jittered plans never sample, so they stay eligible.
        b = PlanBuilder("step", world_size=1)
        _compute(b, 0, "forward")
        assert fastpath_support(b.build(), ctx) is None

    def test_disabled_rng_jitter_is_deterministic(self):
        class Costs:
            rng = None

            def jitter_factor(self):
                return 1.0

        ctx = make_ctx(jitter=Costs().jitter_factor)
        b = PlanBuilder("step", world_size=1)
        _compute(b, 0, "forward", jittered=True)
        assert fastpath_support(b.build(), ctx) is None


class TestEquivalence:
    def test_taxonomy_plan_matches_executor(self):
        ctx = make_ctx()
        timing = evaluate_plan(taxonomy_plan(), ctx,
                               assert_equivalence=True)
        assert timing.mode == "fastpath"
        assert timing.makespan > 0

    def test_modes(self):
        assert evaluate_plan(taxonomy_plan(), make_ctx(),
                             mode="fastpath").mode == "fastpath"
        assert evaluate_plan(taxonomy_plan(), make_ctx(),
                             mode="executor").mode == "executor"
        with pytest.raises(ValueError, match="unknown mode"):
            evaluate_plan(taxonomy_plan(), make_ctx(), mode="warp")

    def test_auto_falls_back_when_ineligible(self):
        ctx = make_ctx()
        ctx.tracer = Tracer(ctx.env)
        assert evaluate_plan(taxonomy_plan(), ctx).mode == "executor"

    def test_rank_end(self):
        plan = taxonomy_plan()
        timing = fastpath_schedule(plan, make_ctx())
        # Both ranks rejoin at the final barrier.
        assert timing.rank_end(plan, 0) == timing.rank_end(plan, 1)
        assert timing.rank_end(plan, 0) == timing.makespan

    def test_delay_elapsed_fraction(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        f = _compute(b, 0, "forward")
        d = b.delay(0, "step-overhead", elapsed_fraction=1.0, deps=[f])
        timing = evaluate_plan(b.build(), ctx, assert_equivalence=True)
        f0, f1 = timing.op_times[f]
        d0, d1 = timing.op_times[d]
        assert d1 - d0 == pytest.approx(f1 - f0, rel=1e-12)

    def test_single_rank_collective_is_immediate(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        g = b.collective(0, "grad", "allreduce", 1e6)
        # Separate the joins in time: back-to-back zero-duration joins on
        # one rank trip the (conservative) rendezvous-tie refusal.
        f = _compute(b, 0, "spacer", deps=[g])
        z = b.collective(0, "empty", "allreduce", 0.0, deps=[f])
        timing = evaluate_plan(b.build(), ctx, assert_equivalence=True)
        assert timing.op_times[g][0] == timing.op_times[g][1]
        assert timing.op_times[z][0] == timing.op_times[z][1]

    def test_zero_and_epsilon_byte_transfers(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        z = b.h2d(0, "empty", 0.0)
        f = _compute(b, 0, "spacer", deps=[z])
        e = b.h2d(0, "tiny", 1e-9, deps=[f])  # > 0 but under epsilon
        timing = evaluate_plan(b.build(), ctx, assert_equivalence=True)
        # Both still pay the fixed per-transfer overhead + latency.
        assert timing.op_times[z][1] > timing.op_times[z][0]
        assert timing.op_times[e][1] > timing.op_times[e][0]

    def test_storage_contention_matches_executor(self):
        # Several writes land at distinct times and share the device's
        # command queue + the fluid timeline through the same links.
        ctx = make_ctx(world=2)
        b = PlanBuilder("ckpt", world_size=2)
        prev = {0: (), 1: ()}
        for i in range(3):
            for rank in range(2):
                f = _compute(b, rank, f"work-{i}", deps=prev[rank],
                             flops=1e12 * (1 + i + rank))
                w = b.storage_write(rank, f"shard-{i}", 64e6, deps=[f])
                prev[rank] = (w,)
        evaluate_plan(b.build(), ctx, assert_equivalence=True)


class TestRefusals:
    def test_same_rank_compute_tie(self):
        ctx = make_ctx(world=1)
        b = PlanBuilder("step", world_size=1)
        _compute(b, 0, "a")
        _compute(b, 0, "b")
        with pytest.raises(FastPathUnsupported, match="FIFO"):
            fastpath_schedule(b.build(), ctx)

    def test_same_rank_join_tie(self):
        ctx = make_ctx()
        b = PlanBuilder("step", world_size=2)
        for rank in range(2):
            b.collective(rank, "g1", "allreduce", 1e6)
            b.collective(rank, "g2", "allreduce", 1e6)
        with pytest.raises(FastPathUnsupported, match="rendezvous"):
            fastpath_schedule(b.build(), ctx)

    def test_collective_mismatch(self):
        ctx = make_ctx()
        b = PlanBuilder("bad", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)
        b.collective(1, "grad", "reduce_scatter", 1e6)
        with pytest.raises(FastPathUnsupported, match="mismatch"):
            fastpath_schedule(b.build(), ctx)

    def test_dep_outside_plan(self):
        import dataclasses

        from repro.plan.ir import StepPlan
        b = PlanBuilder("step", world_size=1)
        f = _compute(b, 0, "forward")
        op = b.build().op(f)
        plan = StepPlan("step", 1,
                        [dataclasses.replace(op, deps=("ghost",))])
        with pytest.raises(FastPathUnsupported, match="outside the plan"):
            fastpath_schedule(plan, make_ctx(world=1))

    def test_unknown_collective_kind(self):
        import dataclasses

        from repro.plan.ir import StepPlan
        b = PlanBuilder("step", world_size=2)
        for rank in range(2):
            b.collective(rank, "grad", "allreduce", 1e6)
        ops = [dataclasses.replace(op, comm="all_to_all")
               for op in b.build()]
        with pytest.raises(FastPathUnsupported, match="unknown"):
            fastpath_schedule(StepPlan("step", 2, ops), make_ctx())

    def test_watchdog_race(self):
        system = ComposableSystem()
        active = system.configure("localGPUs")
        gpus = list(active.gpus)[:2]
        comm = Communicator(system.env, system.topology,
                            [g.name for g in gpus], gpus=gpus,
                            watchdog=1e-12)
        ctx = ExecutionContext(env=system.env, comm=comm, gpus=gpus,
                               topology=system.topology,
                               host_node=system.host.dram_node,
                               storage=active.storage)
        b = PlanBuilder("step", world_size=2)
        for rank in range(2):
            b.collective(rank, "grad", "allreduce", 1e6)
        with pytest.raises(FastPathUnsupported, match="watchdog"):
            fastpath_schedule(b.build(), ctx)

    def test_storage_queue_tie(self):
        import dataclasses
        ctx = make_ctx(world=1)
        ctx.storage.spec = dataclasses.replace(ctx.storage.spec,
                                               queue_depth=1)
        b = PlanBuilder("ckpt", world_size=1)
        for i in range(3):  # three roots hit a depth-1 queue at t=0
            b.storage_write(0, f"shard-{i}", 1e6)
        with pytest.raises(FastPathUnsupported, match="admission"):
            fastpath_schedule(b.build(), ctx)

    def test_storage_queue_drains_in_fifo_order(self):
        import dataclasses
        ctx = make_ctx(world=1)
        ctx.storage.spec = dataclasses.replace(ctx.storage.spec,
                                               queue_depth=1)
        b = PlanBuilder("ckpt", world_size=1)
        f1 = _compute(b, 0, "w1", flops=1e12)
        w1 = b.storage_write(0, "shard-1", 64e6, deps=[f1])
        f2 = _compute(b, 0, "w2", deps=[f1], flops=2e12)
        w2 = b.storage_write(0, "shard-2", 64e6, deps=[f2])
        timing = fastpath_schedule(b.build(), ctx)
        # The second write queues behind the first on the depth-1 device.
        assert timing.op_times[w2][1] > timing.op_times[w1][1]

    def test_stalled_plan(self):
        ctx = make_ctx()
        b = PlanBuilder("bad", world_size=2)
        b.collective(0, "grad", "allreduce", 1e6)
        _compute(b, 1, "forward")  # rank 1 never rendezvouses
        with pytest.raises(FastPathUnsupported, match="stalled"):
            fastpath_schedule(b.build(), ctx)


class TestAssertEqual:
    def _timing(self, times):
        makespan = max((e for _s, e in times.values()), default=0.0)
        return PlanTiming(mode="fastpath", op_times=times,
                          makespan=makespan)

    def test_coverage_mismatch(self):
        with pytest.raises(AssertionError, match="coverage"):
            _assert_equal(self._timing({"a": (0.0, 1.0)}),
                          self._timing({"b": (0.0, 1.0)}))

    def test_time_mismatch(self):
        with pytest.raises(AssertionError, match="diverges"):
            _assert_equal(self._timing({"a": (0.0, 1.0)}),
                          self._timing({"a": (0.0, 1.001)}))

    def test_makespan_mismatch(self):
        fast = PlanTiming(mode="fastpath", op_times={"a": (0.0, 1.0)},
                          makespan=1.0)
        slow = PlanTiming(mode="executor", op_times={"a": (0.0, 1.0)},
                          makespan=2.0)
        with pytest.raises(AssertionError, match="makespan"):
            _assert_equal(fast, slow)

    def test_equal_passes(self):
        _assert_equal(self._timing({"a": (0.0, 1.0)}),
                      self._timing({"a": (0.0, 1.0)}))

    def test_executor_timing_normalizes_to_env_start(self):
        ctx = make_ctx(world=1)
        ctx.env.run(ctx.env.timeout(5.0))  # non-zero env.now
        b = PlanBuilder("step", world_size=1)
        f = _compute(b, 0, "forward")
        timing = _executor_timing(b.build(), ctx)
        assert timing.op_times[f][0] == 0.0
