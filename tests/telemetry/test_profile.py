"""Plan-level profiler: critical path, attribution, what-ifs, reports."""

import json
import math

import pytest

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import ExecutionContext, PlanBuilder, PlanError
from repro.plan.fastpath import evaluate_plan, fastpath_schedule
from repro.telemetry.profile import (
    ATTRIBUTION_CATEGORIES,
    SCALE_BUCKETS,
    attribution,
    bottleneck_label,
    critical_path,
    imbalance,
    predict_scaled_timing,
    profile_plan,
    profile_run,
    relaxation_is_exact,
    scale_plan,
    utilization,
    what_if,
)
from repro.training import Communicator


def make_ctx(world=2, configuration="localGPUs"):
    system = ComposableSystem()
    active = system.configure(configuration)
    gpus = list(active.gpus)[:world]
    comm = Communicator(system.env, system.topology,
                        [g.name for g in gpus], gpus=gpus)
    return ExecutionContext(env=system.env, comm=comm, gpus=gpus,
                            topology=system.topology,
                            host_node=system.host.dram_node,
                            storage=active.storage)


def _compute(b, rank, name, deps=(), flops=1e12):
    return b.compute(rank, name, flops=flops, hbm_bytes=0.0,
                     precision=Precision.FP16, efficiency=0.5,
                     deps=deps)


def step_plan(world=2, comm_bytes=64e6):
    """Input copy -> forward -> allreduce -> optimizer, every rank."""
    b = PlanBuilder("step", world_size=world)
    for rank in range(world):
        h = b.h2d(rank, "input", 4e6)
        f = _compute(b, rank, "forward", deps=[h])
        g = b.collective(rank, "grad", "allreduce", comm_bytes,
                         payload="gradients", deps=[f])
        _compute(b, rank, "opt", deps=[g], flops=1e11)
    b.declare_conservation("gradients", world * comm_bytes)
    return b.build()


def storage_plan():
    b = PlanBuilder("ckpt", world_size=1)
    f = _compute(b, 0, "fwd")
    d = b.d2h(0, "ckpt-d2h", 8e6, deps=[f])
    b.storage_write(0, "ckpt-write", 8e6, deps=[d])
    return b.build()


class TestCriticalPath:
    def test_tiles_the_window_exactly(self):
        plan = step_plan()
        ctx = make_ctx()
        timing = fastpath_schedule(plan, ctx)
        path = critical_path(plan, timing, ctx=ctx)
        assert path.window == (0.0, timing.makespan)
        cursor = 0.0
        for seg in path.segments:
            assert seg.start == pytest.approx(cursor, abs=1e-12)
            assert seg.end > seg.start
            assert seg.category in ATTRIBUTION_CATEGORIES
            cursor = seg.end
        assert cursor == pytest.approx(timing.makespan, rel=1e-12)
        assert path.length == pytest.approx(timing.makespan, rel=1e-9)

    def test_attribution_sums_to_wall(self):
        plan = step_plan()
        ctx = make_ctx()
        path = critical_path(plan, fastpath_schedule(plan, ctx), ctx=ctx)
        attr = attribution(path)
        assert attr.total == pytest.approx(attr.wall, rel=1e-9)
        assert attr.seconds.get("compute", 0.0) > 0
        assert (attr.seconds.get("comm", 0.0)
                + attr.seconds.get("contention", 0.0)) > 0

    def test_storage_chain_attributes_copy_and_storage(self):
        plan = storage_plan()
        ctx = make_ctx(world=1)
        path = critical_path(plan, fastpath_schedule(plan, ctx), ctx=ctx)
        attr = attribution(path)
        assert attr.seconds.get("copy", 0.0) > 0
        assert attr.seconds.get("storage", 0.0) > 0
        assert attr.total == pytest.approx(attr.wall, rel=1e-9)

    def test_empty_timing(self):
        path = critical_path(step_plan(), {}, window=(0.0, 1.0))
        assert path.segments == [] and path.sink_uid is None


class TestLabels:
    def test_comm_heavy_plan_is_comm_bound(self):
        plan = step_plan(comm_bytes=2e9)
        ctx = make_ctx()
        prof = profile_plan(plan, ctx=ctx)
        assert prof.label == "comm-bound"
        assert prof.shares["comm"] >= 0.5

    def test_compute_heavy_plan_is_compute_bound(self):
        plan = step_plan(comm_bytes=1e3)
        ctx = make_ctx()
        prof = profile_plan(plan, ctx=ctx)
        assert prof.label == "compute-bound"

    def test_balanced_label_under_threshold(self):
        from repro.telemetry.profile import Attribution
        attr = Attribution({"compute": 0.4, "comm": 0.35,
                            "storage": 0.25}, {}, (0.0, 1.0))
        label, shares = bottleneck_label(attr)
        assert label == "balanced(compute-leaning)"
        assert sum(shares.values()) == pytest.approx(1.0)


class TestUtilizationAndImbalance:
    def test_gpu_and_link_resources_present(self):
        plan = step_plan()
        ctx = make_ctx()
        timing = fastpath_schedule(plan, ctx)
        util = utilization(plan, timing, ctx=ctx)
        assert any(name.startswith("gpu:r") for name in util)
        assert any(name.startswith("link:") for name in util)
        for stats in util.values():
            assert 0.0 <= stats["busy_frac"] <= 1.0 + 1e-9
            assert stats["contended_s"] >= 0.0

    def test_imbalance_symmetric_plan(self):
        plan = step_plan()
        ctx = make_ctx()
        imb = imbalance(plan, fastpath_schedule(plan, ctx))
        assert imb["end_spread_frac"] == pytest.approx(0.0, abs=1e-9)
        assert len(imb["per_rank"]) == plan.world_size


class TestScalePlan:
    def test_zeroing_comm_conserves_declared_zero(self):
        plan = step_plan()
        scaled = scale_plan(plan, "comm", 0.0)
        assert scaled.meta["conservation"]["gradients"] == 0.0
        from repro.plan import validate_plan
        assert validate_plan(scaled) == []

    def test_compute_scaling_preserves_bytes(self):
        plan = step_plan()
        scaled = scale_plan(plan, "compute", 0.5)
        assert scaled.meta["conservation"] == plan.meta["conservation"]
        for op, orig in zip(scaled.ops, plan.ops):
            assert op.bytes == orig.bytes

    def test_negative_factor_rejected(self):
        with pytest.raises(PlanError):
            scale_plan(step_plan(), "comm", -0.5)

    def test_unknown_bucket_rejected(self):
        with pytest.raises(PlanError):
            scale_plan(step_plan(), "network", 0.5)


class TestWhatIf:
    def test_identity_factor_is_base(self):
        plan = step_plan()
        ctx = make_ctx()
        base = fastpath_schedule(plan, ctx)
        w = what_if(plan, base, ctx, "comm", 1.0)
        assert w.predicted_makespan == pytest.approx(base.makespan,
                                                     rel=1e-12)
        assert w.predicted_ceiling == pytest.approx(1.0, rel=1e-12)
        assert w.predicted_exact

    def test_empty_bucket_is_identity(self):
        plan = step_plan()
        ctx = make_ctx()
        base = fastpath_schedule(plan, ctx)
        w = what_if(plan, base, ctx, "storage", 0.0)
        assert w.method == "identity"
        assert w.predicted_makespan == base.makespan

    def test_zeroed_comm_matches_true_reevaluation(self):
        plan = step_plan()
        ctx = make_ctx()
        base = fastpath_schedule(plan, ctx)
        eval_ctx = make_ctx()  # throwaway: executor fallback mutates
        w = what_if(plan, base, ctx, "comm", 0.0, evaluate=True,
                    evaluate_ctx=eval_ctx)
        assert w.evaluated_makespan == pytest.approx(
            w.predicted_makespan, rel=0.01)
        assert w.predicted_makespan < base.makespan

    def test_relaxation_exactness_classification(self):
        plan = step_plan()
        assert relaxation_is_exact(plan, "comm", 1.0)
        assert relaxation_is_exact(plan, "storage", 0.0)  # no such ops
        assert not relaxation_is_exact(plan, "comm", 0.5)
        # comm flows are the only fabric users besides the input copies,
        # so zeroing comm is NOT certified (copy flows shared the PCIe
        # root with the collectives), but zeroing compute is.
        assert relaxation_is_exact(plan, "compute", 0.0)

    def test_predicted_timing_replays_all_ops(self):
        plan = step_plan()
        ctx = make_ctx()
        base = fastpath_schedule(plan, ctx)
        timing = predict_scaled_timing(plan, base, ctx, "compute", 1.0)
        assert set(timing.op_times) == set(base.op_times)
        for uid, (start, end) in timing.op_times.items():
            bs, be = base.op_times[uid]
            assert start == pytest.approx(bs, abs=1e-9)
            assert end == pytest.approx(be, abs=1e-9)


class TestProfileRun:
    def test_run_profile_reconciles_by_construction(self):
        from repro.experiments.profiling import _build_cell_job
        job = _build_cell_job("mobilenetv2", "localGPUs", "ddp",
                              sim_steps=4)
        rp = profile_run(job)
        assert rp.reconciliation_rel_err <= 1e-9
        assert len(rp.steps) == 4
        assert rp.steady_attr.total == pytest.approx(
            rp.steady_attr.wall, rel=1e-9)
        named = sum(v for k, v in rp.steady_attr.seconds.items()
                    if k != "stall")
        assert named / rp.steady_attr.total >= 0.99


class TestAcceptanceCell:
    """ISSUE 7 acceptance: bert-large / ddp / falcon."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments.profiling import profile_cell
        return profile_cell("bert-large", "falconGPUs", "ddp",
                            sim_steps=4)

    def test_comm_bound_consistent_with_fig11(self, report):
        assert report.label == "comm-bound"

    def test_reconciles_at_1e9(self, report):
        assert report.run_profile.reconciliation_rel_err <= 1e-9

    def test_attributes_99_pct_to_named_categories(self, report):
        attr = report.run_profile.steady_attr
        named = sum(v for k, v in attr.seconds.items() if k != "stall")
        assert named / attr.total >= 0.99

    def test_what_ifs_match_true_reevaluation_within_1pct(self, report):
        for w in report.what_ifs:
            assert w.evaluated_makespan is not None
            assert w.predicted_makespan == pytest.approx(
                w.evaluated_makespan, rel=0.01), w.bucket

    def test_report_serializes(self, report):
        payload = json.loads(report.render_json())
        assert payload["label"] == "comm-bound"
        assert payload["run"]["reconciliation_rel_err"] <= 1e-9
        assert len(payload["what_ifs"]) == len(SCALE_BUCKETS)
        text = report.render_text()
        assert "comm-bound" in text and "what-if" in text


@pytest.mark.parametrize("variant_name", [
    "DP-FP32", "DP-FP16", "DDP-FP32", "DDP-FP16", "Sharded-FP16",
    "Pipeline-FP16"])
def test_what_if_ceilings_all_fig16_variants(variant_name):
    """Zero-cost re-evaluation matches the predicted ceiling within 1%
    for every bucket, on each Fig. 16 strategy variant (falcon)."""
    from repro.experiments.perfbench import _build_job
    from repro.experiments.software_opts import VARIANTS

    variant = next(v for v in VARIANTS if v.name == variant_name)
    job = _build_job("falconGPUs", variant, None)
    plan = job.step_plan
    base = fastpath_schedule(plan, job._exec_ctx)
    for bucket in SCALE_BUCKETS:
        throwaway = _build_job("falconGPUs", variant, None)
        w = what_if(plan, base, job._exec_ctx, bucket, 0.0,
                    evaluate=True, evaluate_ctx=throwaway._exec_ctx)
        assert w.evaluated_makespan is not None
        assert w.predicted_makespan == pytest.approx(
            w.evaluated_makespan, rel=0.01), (variant_name, bucket)
        # Zeroing a cost never slows the plan down beyond scheduling
        # noise (executor tie-breaks can differ from the fastpath base).
        assert w.evaluated_makespan <= base.makespan * 1.01


def test_bottleneck_labels_grid_smoke():
    from repro.experiments.profiling import bottleneck_labels
    from repro.experiments.software_opts import VARIANTS

    ddp16 = [v for v in VARIANTS if v.name == "DDP-FP16"]
    grid = bottleneck_labels(configurations=("localGPUs", "falconGPUs"),
                             variants=ddp16)
    assert grid["localGPUs"]["DDP-FP16"]["label"] == "compute-bound"
    assert grid["falconGPUs"]["DDP-FP16"]["label"] == "comm-bound"
