"""Incremental what-if re-timing: dirty cones, guards, equivalence."""

import pytest

from repro.plan import PlanBuilder
from repro.plan.fastpath import evaluate_plan
from repro.telemetry.profile import (
    SCALE_BUCKETS,
    dirty_cone,
    predict_scaled_timing,
    retime_incremental,
)

from .test_profile import _compute, make_ctx, step_plan, storage_plan


def times_close(a, b):
    assert a.op_times.keys() == b.op_times.keys()
    for uid, (s, e) in a.op_times.items():
        s2, e2 = b.op_times[uid]
        assert s == pytest.approx(s2, rel=1e-9, abs=1e-12)
        assert e == pytest.approx(e2, rel=1e-9, abs=1e-12)
    assert a.makespan == pytest.approx(b.makespan, rel=1e-9, abs=1e-12)


def mixed_plan(world=2):
    """Streams, rendezvous, copies, storage, and delays all present."""
    b = PlanBuilder("mixed", world_size=world)
    for rank in range(world):
        h = b.h2d(rank, "input", 4e6)
        f = _compute(b, rank, "forward", deps=[h])
        g = b.collective(rank, "grad", "allreduce", 32e6, deps=[f])
        o = _compute(b, rank, "opt", deps=[g], flops=1e11)
        d = b.delay(rank, "step-gap", seconds=1e-4,
                    elapsed_fraction=0.01, deps=[o])
        if rank == 0:
            dh = b.d2h(0, "ckpt", 8e6, deps=[d])
            b.storage_write(0, "ckpt-write", 8e6, deps=[dh])
    return b.build()


class TestDirtyCone:
    def test_dag_dependents_are_dirty(self):
        plan = step_plan()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        first = next(op for op in plan if op.name == "input")
        cone = dirty_cone(plan, base, {first.uid})
        assert first.uid in cone
        # Everything downstream of rank 0's input: its forward, the
        # rendezvous (both members), both opts.
        names = {op.name for op in plan if op.uid in cone}
        assert {"input", "forward", "grad", "opt"} <= names

    def test_rendezvous_dirties_all_members(self):
        plan = step_plan()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        grad0 = next(op for op in plan
                     if op.name == "grad" and op.rank == 0)
        cone = dirty_cone(plan, base, {grad0.uid})
        grads = [op.uid for op in plan if op.name == "grad"]
        assert set(grads) <= cone

    def test_independent_rank_stays_clean(self):
        # Two ranks with no cross-rank edges: one rank's perturbation
        # must not touch the other.
        b = PlanBuilder("islands", world_size=2)
        for rank in range(2):
            f = _compute(b, rank, "fwd")
            _compute(b, rank, "opt", deps=[f], flops=1e11)
        plan = b.build()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        f0 = next(op for op in plan if op.name == "fwd" and op.rank == 0)
        cone = dirty_cone(plan, base, {f0.uid})
        assert all(op.rank == 0 for op in plan if op.uid in cone)

    def test_stream_suffix_is_dirty(self):
        b = PlanBuilder("chain", world_size=1)
        a = _compute(b, 0, "a")
        bb = _compute(b, 0, "b", deps=[a])
        c = _compute(b, 0, "c", deps=[bb])
        plan = b.build()
        ctx = make_ctx(world=1)
        base = evaluate_plan(plan, ctx, mode="fastpath")
        cone = dirty_cone(plan, base, {bb})
        assert a not in cone and {bb, c} <= cone


class TestEquivalenceWithFullReplay:
    @pytest.mark.parametrize("bucket", SCALE_BUCKETS)
    @pytest.mark.parametrize("factor", [0.0, 0.3, 1.0, 2.0])
    def test_matches_full_relaxation(self, bucket, factor):
        plan = mixed_plan()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        full = predict_scaled_timing(plan, base, ctx, bucket, factor)
        inc = retime_incremental(plan, base, ctx, bucket, factor)
        times_close(inc.timing, full)

    def test_identity_factor_is_free(self):
        plan = mixed_plan()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        inc = retime_incremental(plan, base, ctx, "compute", 1.0)
        assert inc.cone_fraction == 0.0
        assert inc.timing.op_times == base.op_times

    def test_clean_ops_keep_base_times_verbatim(self):
        plan = mixed_plan()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        inc = retime_incremental(plan, base, ctx, "storage", 0.5)
        assert 0.0 < inc.cone_fraction < 1.0
        for uid, span in base.op_times.items():
            if uid not in inc.cone:
                assert inc.timing.op_times[uid] == span

    def test_storage_cone_is_small(self):
        plan = mixed_plan()
        ctx = make_ctx()
        base = evaluate_plan(plan, ctx, mode="fastpath")
        inc = retime_incremental(plan, base, ctx, "storage", 0.25)
        # The checkpoint tail is a sink: only the write itself moves.
        assert inc.cone_fraction <= 0.2
        full = predict_scaled_timing(plan, base, ctx, "storage", 0.25)
        times_close(inc.timing, full)


class TestDetectAndExpand:
    def _delay_chain_ctx(self):
        # Two delay->compute chains on one rank; shrinking the second
        # delay (only) reorders the stream, which the cone built from
        # base order cannot see until the guard trips.
        b = PlanBuilder("step", world_size=1)
        d1 = b.delay(0, "stall-a", seconds=0.3)
        c1 = _compute(b, 0, "a", deps=[d1])
        d2 = b.delay(0, "stall-b", seconds=0.5)
        c2 = _compute(b, 0, "b", deps=[d2], flops=5e11)
        return b, d1, c1, d2, c2

    def _shrunk(self, plan, d2):
        import dataclasses

        from repro.plan.ir import StepPlan
        ops = [dataclasses.replace(op, seconds=0.1)
               if op.uid == d2 else op for op in plan]
        return StepPlan(plan.name, plan.world_size, ops, dict(plan.meta))

    def test_guard_expands_and_matches_engine(self):
        b, _d1, c1, d2, c2 = self._delay_chain_ctx()
        plan = b.build()
        ctx = make_ctx(world=1)
        base = evaluate_plan(plan, ctx, mode="fastpath")
        shrunk = self._shrunk(plan, d2)
        # Seed only the shrunk delay: its compute now becomes ready
        # before the clean chain's compute, flipping FIFO order.
        inc = retime_incremental(shrunk, base, ctx, "compute", 1.0,
                                 seeds={d2})
        assert inc.expand_rounds >= 1
        truth = evaluate_plan(shrunk, make_ctx(world=1), mode="fastpath")
        for uid in (c1, c2, d2):
            assert inc.timing.op_times[uid] == \
                pytest.approx(truth.op_times[uid], rel=1e-9, abs=1e-12)

    def test_no_expansion_when_order_holds(self):
        b, _d1, _c1, d2, _c2 = self._delay_chain_ctx()
        plan = b.build()
        ctx = make_ctx(world=1)
        base = evaluate_plan(plan, ctx, mode="fastpath")
        inc = retime_incremental(plan, base, ctx, "compute", 1.0,
                                 seeds={d2})
        assert inc.expand_rounds == 0
        assert inc.timing.op_times == base.op_times


class TestWhatIfIntegration:
    def test_what_if_uses_incremental_and_agrees_with_engine(self):
        plan = storage_plan()
        ctx = make_ctx(world=1)
        base = evaluate_plan(plan, ctx, mode="fastpath")
        from repro.telemetry.profile import what_if
        result = what_if(plan, base, ctx, "storage", 0.5,
                         evaluate=True, evaluate_ctx=make_ctx(world=1))
        # Partial storage factors are not certified, so what_if may
        # escalate past the (incremental) relaxation to an engine probe.
        assert result.method in ("relaxation", "fastpath-epsilon")
        assert result.predicted_makespan <= base.makespan
        assert result.evaluated_makespan <= base.makespan
