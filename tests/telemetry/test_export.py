"""Tests for trace exporters and attribution (repro.telemetry.export)."""

import json

import pytest

from repro.telemetry import (
    Category,
    Tracer,
    Track,
    render_ascii_timeline,
    render_flame_summary,
    step_attribution,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.export import _leaf_spans, flame_rows


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


TRACK = Track("host0", "gpu0")


def build_simple_trace():
    """One step with forward/backward children plus an instant event."""
    clock = FakeClock()
    tracer = Tracer(clock)
    step = tracer.span("step", Category.OTHER, TRACK, step=0)
    fwd = tracer.span("forward", Category.COMPUTE, TRACK)
    clock.now = 1.0
    fwd.close()
    bwd = tracer.span("backward", Category.COMPUTE, TRACK)
    clock.now = 3.0
    bwd.close()
    sync = tracer.span("allreduce", Category.COMM, TRACK, bytes=1024)
    clock.now = 4.0
    sync.close()
    step.close()
    tracer.instant("fault", Category.CHAOS, Track("events", "falcon0"))
    return clock, tracer


class TestChromeTrace:
    def test_structure_and_units(self):
        _, tracer = build_simple_trace()
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in xs}
        assert {"step", "forward", "backward", "allreduce"} <= names
        fwd = next(e for e in xs if e["name"] == "forward")
        assert fwd["ts"] == 0 and fwd["dur"] == pytest.approx(1e6)
        assert fwd["cat"] == "compute"

    def test_metadata_names_processes_and_threads(self):
        _, tracer = build_simple_trace()
        trace = to_chrome_trace(tracer)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        procs = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"}
        assert procs == {"host0", "events"}
        assert "gpu0" in threads

    def test_instants_become_thread_scoped_i_events(self):
        _, tracer = build_simple_trace()
        trace = to_chrome_trace(tracer)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "fault"
        assert instants[0]["s"] == "t"

    def test_pid_tid_are_stable_integers(self):
        _, tracer = build_simple_trace()
        a = to_chrome_trace(tracer)
        b = to_chrome_trace(tracer)
        assert a["traceEvents"] == b["traceEvents"]
        for e in a["traceEvents"]:
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)

    def test_open_spans_closed_on_export(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.span("dangling", Category.OTHER, TRACK)
        clock.now = 2.0
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        (x,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x["dur"] == pytest.approx(2e6)

    def test_json_roundtrip_via_file(self, tmp_path):
        _, tracer = build_simple_trace()
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_jsonl_one_object_per_line(self):
        _, tracer = build_simple_trace()
        lines = to_jsonl(tracer).strip().split("\n")
        rows = [json.loads(line) for line in lines]
        assert len(rows) == len(tracer.spans) + len(tracer.instants)
        assert all("name" in r for r in rows)

    def test_validator_flags_overlap(self):
        trace = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10, "cat": "x", "args": {}},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 5, "dur": 10, "cat": "x", "args": {}},
        ]}
        assert any("overlap" in e for e in validate_chrome_trace(trace))

    def test_validator_flags_negative_duration(self):
        trace = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0, "dur": -1, "cat": "x", "args": {}},
        ]}
        assert validate_chrome_trace(trace) != []

    def test_non_json_attrs_are_stringified(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.span("x", Category.OTHER, TRACK, obj=object()).close()
        trace = to_chrome_trace(tracer)
        json.dumps(trace)  # must not raise


class TestLeafSpans:
    def test_parents_excluded(self):
        _, tracer = build_simple_trace()
        leaves = _leaf_spans([s for s in tracer.spans
                              if s.track == TRACK])
        assert sorted(s.name for s in leaves) == ["allreduce", "backward",
                                                  "forward"]

    def test_zero_duration_span_does_not_steal_leaf_status(self):
        # regression: a 0-length span at a sibling's start instant must
        # not mark the sibling as a parent (its time would vanish).
        clock = FakeClock()
        tracer = Tracer(clock)
        zero = tracer.span("wait-data", Category.STALL, TRACK)
        zero.close()
        fwd = tracer.span("forward", Category.COMPUTE, TRACK)
        clock.now = 1.0
        fwd.close()
        leaves = _leaf_spans(tracer.spans)
        assert [s.name for s in leaves] == ["forward"]


class TestStepAttribution:
    def test_categories_sum_to_wall(self):
        _, tracer = build_simple_trace()
        (step,) = step_attribution(tracer, TRACK)
        assert step.wall == pytest.approx(4.0)
        assert step.accounted == pytest.approx(step.wall)
        assert step.compute == pytest.approx(3.0)
        assert step.comm == pytest.approx(1.0)

    def test_uninstrumented_time_lands_in_stall(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        step = tracer.span("step", Category.OTHER, TRACK, step=0)
        fwd = tracer.span("forward", Category.COMPUTE, TRACK)
        clock.now = 1.0
        fwd.close()
        clock.now = 3.0  # two seconds nothing was instrumented
        step.close()
        (attr,) = step_attribution(tracer, TRACK)
        assert attr.stall == pytest.approx(2.0)
        assert attr.accounted == pytest.approx(attr.wall)

    def test_only_requested_track(self):
        _, tracer = build_simple_trace()
        assert step_attribution(tracer, Track("host0", "gpu9")) == []


class TestRendering:
    def test_flame_rows_aggregate_leaf_time(self):
        _, tracer = build_simple_trace()
        rows = flame_rows(tracer)
        by_name = {r["name"]: r for r in rows}
        assert by_name["forward"]["total_s"] == pytest.approx(1.0)
        assert by_name["backward"]["count"] == 1

    def test_flame_summary_renders(self):
        _, tracer = build_simple_trace()
        text = render_flame_summary(tracer)
        assert "forward" in text and "compute" in text

    def test_ascii_timeline_glyphs(self):
        _, tracer = build_simple_trace()
        art = render_ascii_timeline(tracer, TRACK, 0.0, 4.0, width=40)
        line = art.split("\n")[0]
        assert len(line) == 40
        assert line.count("#") == 30  # 3s compute of 4s window
        assert line.count("=") == 10  # 1s comm

    def test_ascii_timeline_empty_window(self):
        _, tracer = build_simple_trace()
        assert render_ascii_timeline(tracer, TRACK, 2.0, 2.0) == ""

    def test_ascii_timeline_width_clamped(self):
        _, tracer = build_simple_trace()
        wide = render_ascii_timeline(tracer, TRACK, 0.0, 4.0,
                                     width=5000)
        assert len(wide.split("\n")[0]) == 400
        narrow = render_ascii_timeline(tracer, TRACK, 0.0, 4.0, width=2)
        assert len(narrow.split("\n")[0]) == 8

    def test_ascii_timeline_wide_sim_range_keeps_coverage(self):
        # Spans much shorter than one column must still paint their
        # dominant glyph instead of vanishing or crashing (the old
        # integer-stride sampler skipped sub-column spans entirely).
        clock = FakeClock()
        tracer = Tracer(clock)
        for i in range(50):
            clock.now = i * 100.0
            span = tracer.span(f"burst{i}", Category.COMPUTE, TRACK)
            clock.now = i * 100.0 + 0.5
            span.close()
        art = render_ascii_timeline(tracer, TRACK, 0.0, 5000.0,
                                    width=40)
        line = art.split("\n")[0]
        assert len(line) == 40
        assert "#" in line

    def test_ascii_timeline_majority_glyph_per_column(self):
        # Within one column, the glyph covering more sim time wins.
        clock = FakeClock()
        tracer = Tracer(clock)
        compute = tracer.span("fwd", Category.COMPUTE, TRACK)
        clock.now = 3.0
        compute.close()
        comm = tracer.span("ar", Category.COMM, TRACK)
        clock.now = 4.0
        comm.close()
        art = render_ascii_timeline(tracer, TRACK, 0.0, 4.0, width=8)
        line = art.split("\n")[0]
        assert line == "######=="
