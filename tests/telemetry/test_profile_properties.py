"""Property tests for the profiler: tiling, attribution, what-if laws.

The plan generator mirrors ``tests/plan/test_pass_properties.py`` but is
trimmed to rank-symmetric programs (every rank runs the same schedule at
the same cost), which keeps the fast path deterministic across scale
factors so the monotonicity law is well-posed.

Note the deliberately *absent* law: the Amdahl bound is NOT a lower
bound on the zeroed makespan — zeroing a bucket also removes the gap
and contention tiles that trail its critical-path segments, so the true
re-evaluated makespan can undercut ``base - cp_bucket_seconds``.  The
profiler reports the analytic bound as a cross-check column only.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import ExecutionContext, PlanBuilder, PlanError
from repro.plan.fastpath import FastPathUnsupported, fastpath_schedule
from repro.telemetry.profile import (
    SCALE_BUCKETS,
    attribution,
    critical_path,
    predict_scaled_timing,
    scale_plan,
    what_if,
)
from repro.training import Communicator

_SYNC_KINDS = ("allreduce", "reduce_scatter", "all_gather", "broadcast")

_CTX_CACHE = {}


def make_ctx(world):
    # One context per world size: fastpath_schedule is pure (no env
    # mutation), so property examples can share them.
    if world not in _CTX_CACHE:
        system = ComposableSystem()
        active = system.configure("localGPUs")
        gpus = list(active.gpus)[:world]
        comm = Communicator(system.env, system.topology,
                            [g.name for g in gpus], gpus=gpus)
        _CTX_CACHE[world] = ExecutionContext(
            env=system.env, comm=comm, gpus=gpus,
            topology=system.topology,
            host_node=system.host.dram_node, storage=active.storage)
    return _CTX_CACHE[world]


@st.composite
def plans(draw):
    """Rank-symmetric step plans over every scalable bucket."""
    world = draw(st.integers(min_value=1, max_value=3))
    n_h2d = draw(st.integers(min_value=0, max_value=2))
    h2d_bytes = draw(st.sampled_from([1e5, 4e6, 3.3e7]))
    flops = draw(st.sampled_from([1e11, 1e12, 7e12]))
    colls = draw(st.lists(st.tuples(
        st.sampled_from(_SYNC_KINDS),
        st.sampled_from([1e4, 1e6, 6.4e7])), max_size=3))
    delay_s = draw(st.sampled_from([0.0, 1e-4, 2e-3]))
    with_storage = draw(st.booleans())

    b = PlanBuilder("prop", world_size=world)
    for rank in range(world):
        deps = []
        for i in range(n_h2d):
            op = b.h2d(rank, f"in{i}", h2d_bytes,
                       deps=deps[-1:] if deps else ())
            deps = [op]
        fwd = b.compute(rank, "fwd", flops=flops, hbm_bytes=0.0,
                        precision=Precision.FP16, efficiency=0.5,
                        deps=deps)
        anchor = fwd
        for i, (kind, nbytes) in enumerate(colls):
            anchor = b.collective(rank, f"c{i}", kind, nbytes,
                                  payload=f"p{i}", deps=[anchor])
        if delay_s:
            anchor = b.delay(rank, "lag", seconds=delay_s,
                             deps=[anchor])
        tail = b.compute(rank, "opt", flops=1e10, hbm_bytes=0.0,
                         precision=Precision.FP16, efficiency=0.5,
                         deps=[anchor])
        if with_storage and rank == 0:
            d = b.d2h(rank, "snap-d2h", 2e6, deps=[tail])
            b.storage_write(rank, "snap", 2e6, deps=[d])
    for i, (_kind, nbytes) in enumerate(colls):
        b.declare_conservation(f"p{i}", world * nbytes)
    return b.build()


def _schedule(plan):
    ctx = make_ctx(plan.world_size)
    try:
        return ctx, fastpath_schedule(plan, ctx)
    except FastPathUnsupported:
        assume(False)


@given(plans())
@settings(max_examples=25, deadline=None)
def test_critical_path_length_equals_makespan(plan):
    ctx, timing = _schedule(plan)
    path = critical_path(plan, timing, ctx=ctx)
    assert path.length == pytest.approx(timing.makespan, rel=1e-9,
                                        abs=1e-15)
    cursor = 0.0
    for seg in path.segments:
        assert seg.start == pytest.approx(cursor, abs=1e-12)
        cursor = seg.end


@given(plans())
@settings(max_examples=25, deadline=None)
def test_attribution_sums_to_total_time(plan):
    ctx, timing = _schedule(plan)
    attr = attribution(critical_path(plan, timing, ctx=ctx))
    assert attr.total == pytest.approx(attr.wall, rel=1e-9, abs=1e-15)
    assert all(v >= 0 for v in attr.seconds.values())


@given(plans(), st.sampled_from(SCALE_BUCKETS))
@settings(max_examples=25, deadline=None)
def test_what_if_identity_at_factor_one(plan, bucket):
    ctx, timing = _schedule(plan)
    w = what_if(plan, timing, ctx, bucket, 1.0)
    assert w.predicted_makespan == pytest.approx(timing.makespan,
                                                 rel=1e-12)
    assert w.predicted_ceiling == pytest.approx(1.0, rel=1e-12)


@given(plans(), st.sampled_from(SCALE_BUCKETS))
@settings(max_examples=25, deadline=None)
def test_what_if_ceiling_monotone_in_scale_factor(plan, bucket):
    ctx, timing = _schedule(plan)
    spans = []
    for factor in (0.0, 0.25, 0.5, 1.0):
        try:
            spans.append(predict_scaled_timing(
                plan, timing, ctx, bucket, factor).makespan)
        except PlanError:
            assume(False)
    for lo, hi in zip(spans, spans[1:]):
        assert lo <= hi * (1 + 1e-9)


@given(plans(), st.sampled_from(SCALE_BUCKETS),
       st.sampled_from([0.0, 0.5, 2.0]))
@settings(max_examples=25, deadline=None)
def test_scale_plan_roundtrips_structure(plan, bucket, factor):
    scaled = scale_plan(plan, bucket, factor)
    assert len(scaled.ops) == len(plan.ops)
    assert [op.uid for op in scaled.ops] == [op.uid for op in plan.ops]
    from repro.plan import validate_plan
    assert validate_plan(scaled) == []
