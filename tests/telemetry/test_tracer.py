"""Tests for the sim-time span tracer (repro.telemetry.trace).

Includes the property test required by the observability PR: *any*
sequence of span opens/closes — including out-of-order and never-closed
spans — must export well-formed Chrome trace events, with ``dur >= 0``
and no two spans overlapping on one (pid, tid).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import (
    Category,
    NULL_TRACER,
    Span,
    Tracer,
    Track,
    to_chrome_trace,
    validate_chrome_trace,
)


class FakeClock:
    """Minimal Environment stand-in: just a settable ``now``."""

    def __init__(self, now=0.0):
        self.now = now


def tracer_at(now=0.0):
    clock = FakeClock(now)
    return clock, Tracer(clock)


TRACK = Track("host0", "gpu0")


class TestSpanBasics:
    def test_span_records_interval(self):
        clock, tracer = tracer_at()
        span = tracer.span("forward", Category.COMPUTE, TRACK, step=3)
        clock.now = 2.5
        span.close()
        assert span.start == 0.0 and span.end == 2.5
        assert span.duration == 2.5
        assert span.attrs == {"step": 3}
        assert tracer.spans == [span]

    def test_context_manager_closes_at_exit_time(self):
        clock, tracer = tracer_at()
        with tracer.span("io", Category.STORAGE, TRACK) as span:
            clock.now = 1.0
        assert span.closed and span.end == 1.0

    def test_close_is_idempotent(self):
        clock, tracer = tracer_at()
        span = tracer.span("x", Category.OTHER, TRACK)
        clock.now = 1.0
        span.close()
        clock.now = 5.0
        span.close()
        assert span.end == 1.0

    def test_close_merges_attrs(self):
        clock, tracer = tracer_at()
        span = tracer.span("t", Category.FABRIC, TRACK, bytes=10)
        span.close(stall_s=0.5)
        assert span.attrs == {"bytes": 10, "stall_s": 0.5}

    def test_explicit_close_time(self):
        clock, tracer = tracer_at()
        span = tracer.span("x", Category.OTHER, TRACK)
        clock.now = 10.0
        span.close(at=4.0)
        assert span.end == 4.0

    def test_close_never_before_start(self):
        clock, tracer = tracer_at(now=5.0)
        span = tracer.span("x", Category.OTHER, TRACK)
        span.close(at=1.0)
        assert span.end == span.start == 5.0

    def test_none_track_coerced(self):
        clock, tracer = tracer_at()
        span = tracer.span("x", Category.OTHER, None)
        assert span.track is not None


class TestNesting:
    def test_forgiving_close_closes_descendants(self):
        clock, tracer = tracer_at()
        outer = tracer.span("step", Category.OTHER, TRACK)
        clock.now = 1.0
        inner = tracer.span("forward", Category.COMPUTE, TRACK)
        clock.now = 2.0
        # closing the parent closes the still-open child at the same time
        outer.close()
        assert inner.closed and inner.end == 2.0
        assert outer.end == 2.0

    def test_spans_nest_on_one_track(self):
        clock, tracer = tracer_at()
        outer = tracer.span("step", Category.OTHER, TRACK)
        clock.now = 1.0
        inner = tracer.span("forward", Category.COMPUTE, TRACK)
        clock.now = 2.0
        inner.close()
        clock.now = 3.0
        outer.close()
        assert inner.start >= outer.start and inner.end <= outer.end

    def test_complete_retroactive(self):
        clock, tracer = tracer_at(now=10.0)
        span = tracer.complete("backward", Category.COMPUTE, TRACK,
                               start=4.0, end=9.0, overlapped=True)
        assert span.closed and span.duration == pytest.approx(5.0)

    def test_complete_rejects_negative_duration(self):
        clock, tracer = tracer_at()
        with pytest.raises(ValueError):
            tracer.complete("bad", Category.OTHER, TRACK, 5.0, 4.0)

    def test_finish_closes_everything(self):
        clock, tracer = tracer_at()
        tracer.span("a", Category.OTHER, TRACK)
        tracer.span("b", Category.OTHER, Track("host0", "gpu1"))
        clock.now = 7.0
        tracer.finish()
        assert not tracer.open_spans()
        assert all(s.end == 7.0 for s in tracer.spans)


class TestLanes:
    def test_lane_reuse_after_release(self):
        clock, tracer = tracer_at()
        a = tracer.lane("comm")
        b = tracer.lane("comm")
        assert {a.thread, b.thread} == {"lane-0", "lane-1"}
        tracer.release_lane(a)
        c = tracer.lane("comm")
        assert c.thread == "lane-0"  # lowest free index first

    def test_lane_pools_are_independent(self):
        clock, tracer = tracer_at()
        a = tracer.lane("comm")
        b = tracer.lane("fabric")
        assert a.process == "comm" and b.process == "fabric"
        assert a.thread == b.thread == "lane-0"


class TestInstantsAndEventLog:
    def test_instant_records_marker(self):
        clock, tracer = tracer_at(now=3.0)
        tracer.instant("port-flap", Category.CHAOS, TRACK, port="H1")
        (ev,) = tracer.instants
        assert ev.time == 3.0 and ev.attrs == {"port": "H1"}

    def test_event_log_bridge(self):
        from repro.management.events import EventLog

        log = EventLog()
        log.record(0.0, "allocate", "falcon0", device="gpu0")
        clock, tracer = tracer_at()
        tracer.attach_event_log(log)
        # replayed history
        assert [e.name for e in tracer.instants] == ["allocate"]
        assert tracer.instants[0].category is Category.MANAGEMENT
        assert tracer.instants[0].attrs == {"device": "gpu0"}
        # streaming: new records arrive through the subscription
        log.record(1.0, "link-fault", "falcon0/H1")
        assert [e.name for e in tracer.instants] == ["allocate",
                                                     "link-fault"]
        assert tracer.instants[1].category is Category.CHAOS


class TestNullTracer:
    def test_everything_is_a_noop(self):
        span = NULL_TRACER.span("x", Category.COMPUTE, TRACK)
        with span:
            pass
        span.close().annotate(a=1)
        NULL_TRACER.instant("x")
        track = NULL_TRACER.lane("comm")
        NULL_TRACER.release_lane(track)
        NULL_TRACER.finish()
        assert len(NULL_TRACER) == 0

    def test_enabled_tracer_needs_env(self):
        with pytest.raises(ValueError):
            Tracer(env=None, enabled=True)


# -- the PR's required property test ------------------------------------

#: One scripted tracer operation: (op, track_index, dt).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["open", "close", "complete", "instant"]),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=60,
)

_TRACKS = [Track("host0", "gpu0"), Track("host0", "gpu1"),
           Track("comm", "lane-0")]


class TestTraceWellFormednessProperty:
    @settings(max_examples=120, deadline=None)
    @given(ops=_OPS)
    def test_arbitrary_open_close_sequences_export_valid_traces(self, ops):
        """Any open/close interleaving yields a schema-valid trace:
        every duration >= 0 and no overlap of spans on one (pid, tid)."""
        clock, tracer = tracer_at()
        open_by_track = {t: [] for t in _TRACKS}
        for op, track_index, dt in ops:
            clock.now += dt
            track = _TRACKS[track_index]
            if op == "open":
                open_by_track[track].append(
                    tracer.span(f"s{track_index}", Category.COMPUTE, track))
            elif op == "close" and open_by_track[track]:
                # close an arbitrary (possibly non-innermost) span
                index = len(open_by_track[track]) // 2
                open_by_track[track].pop(index).close()
            elif op == "complete":
                tracer.complete("retro", Category.COMM, track,
                                clock.now, clock.now + dt)
                clock.now += dt
            elif op == "instant":
                tracer.instant("mark", Category.CHAOS, track)
        tracer.finish()

        assert all(s.closed for s in tracer.spans)
        assert all(s.duration >= 0.0 for s in tracer.spans)
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_spans_on_one_track_nest_or_are_disjoint(self, ops):
        clock, tracer = tracer_at()
        for op, track_index, dt in ops:
            clock.now += dt
            track = _TRACKS[track_index]
            if op in ("open", "complete"):
                tracer.span("s", Category.COMPUTE, track)
            elif op == "close":
                stack = tracer._open.get(track)
                if stack:
                    stack[-1].close()
        tracer.finish()
        by_track = {}
        for span in tracer.spans:
            by_track.setdefault(span.track, []).append(span)
        for spans in by_track.values():
            spans.sort(key=lambda s: (s.start, -(s.end - s.start)))
            for a, b in zip(spans, spans[1:]):
                nested = b.start >= a.start and b.end <= a.end
                disjoint = b.start >= a.end
                assert nested or disjoint
