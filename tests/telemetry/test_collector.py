"""Unit tests for the metrics collector."""

import numpy as np
import pytest

from repro.devices import CPU, GPU
from repro.fabric import GIB, Topology
from repro.sim import Environment
from repro.telemetry import MetricsCollector

TFLOPS = 1e12


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


def test_invalid_interval(env):
    with pytest.raises(ValueError):
        MetricsCollector(env, sample_interval=0.0)


def test_gpu_utilization_sampling(env, topo):
    gpu = GPU(env, topo, "g0")
    collector = MetricsCollector(env, sample_interval=0.5)
    collector.watch_gpu(gpu)
    collector.start()

    def work():
        # Busy for 5s out of 10.
        yield gpu.compute(15.7 * TFLOPS * 5, 0, efficiency=1.0)
        yield env.timeout(5.0)
        collector.stop()

    env.process(work())
    env.run(until=10.0)
    collector.stop()
    util = collector.mean_gpu_utilization(0.0, 10.0)
    assert util == pytest.approx(50.0, abs=8.0)


def test_utilization_consistent_with_long_kernels(env, topo):
    """A kernel much longer than the sampling interval must not be
    under-counted (the in-flight-kernel estimator bug)."""
    gpu = GPU(env, topo, "g0")
    collector = MetricsCollector(env, sample_interval=0.1)
    collector.watch_gpu(gpu)
    collector.start()

    def work():
        for _ in range(4):
            yield gpu.compute(15.7 * TFLOPS, 0, efficiency=1.0)  # 1 s each
        collector.stop()

    done = env.process(work())
    env.run(until=done)
    util = collector.mean_gpu_utilization(0.0, 4.0)
    assert util == pytest.approx(100.0, abs=2.0)


def test_gpu_memory_sampling(env, topo):
    gpu = GPU(env, topo, "g0")
    collector = MetricsCollector(env, sample_interval=0.5)
    collector.watch_gpu(gpu)
    collector.start()

    def work():
        yield gpu.alloc(8 * GIB)
        yield env.timeout(5.0)
        collector.stop()

    env.process(work())
    env.run()
    mem = collector.mean_gpu_memory(0.0, 5.0)
    assert mem == pytest.approx(50.0, abs=5.0)


def test_cpu_utilization_sampling(env, topo):
    cpu = CPU(env, "c0")
    collector = MetricsCollector(env, sample_interval=0.5)
    collector.watch_cpu(cpu)
    collector.start()

    def work():
        yield cpu.run(40.0, parallelism=40)  # all cores for 1 s
        yield env.timeout(1.0)
        collector.stop()

    env.process(work())
    env.run()
    util = collector.mean_cpu_utilization(0.0, 2.0)
    assert util == pytest.approx(50.0, abs=8.0)


def test_watch_idempotent(env, topo):
    gpu = GPU(env, topo, "g0")
    collector = MetricsCollector(env)
    collector.watch_gpu(gpu)
    collector.watch_gpu(gpu)
    assert len(collector.gpu_util) == 1


def test_start_idempotent(env, topo):
    collector = MetricsCollector(env, sample_interval=1.0)
    gpu = GPU(env, topo, "g0")
    collector.watch_gpu(gpu)
    collector.start()
    collector.start()
    env.run(until=3.5)
    collector.stop()
    # One sampler, not two: 3 samples for gauges.
    assert len(collector.gpu_mem["g0"]) == 3


def test_empty_collector_means_are_nan(env):
    import math
    collector = MetricsCollector(env)
    assert math.isnan(collector.mean_gpu_utilization())
    assert math.isnan(collector.mean_host_memory())


class TestLifecycle:
    """stop/start idempotence and the stopped-collector contract."""

    def test_stop_is_idempotent(self, env, topo):
        c = MetricsCollector(env)
        c.start()
        env.run(until=1.0)
        c.stop()
        c.stop()  # second stop must be a no-op, not a crash

    def test_stop_without_start_is_safe(self, env):
        c = MetricsCollector(env)
        c.stop()  # _start_time is None; _finalize must not blow up
        assert np.isnan(c.mean_gpu_utilization())

    def test_restart_after_stop_raises_clear_error(self, env):
        c = MetricsCollector(env)
        c.start()
        c.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            c.start()

    def test_start_while_running_is_idempotent(self, env):
        c = MetricsCollector(env)
        c.start()
        c.start()  # re-entrant start while running: no second loop
        env.run(until=0.5)
        c.stop()
