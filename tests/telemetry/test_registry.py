"""Tests for the unified MetricsRegistry (repro.telemetry.registry)."""

import math

import pytest

from repro.sim import CounterMonitor, TimeSeries
from repro.telemetry import MetricError, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestRegistration:
    def test_series_creates_then_returns_same(self, registry):
        a = registry.series("gpu/host0/gpu0/util", unit="%")
        b = registry.series("gpu/host0/gpu0/util")
        assert a is b
        assert isinstance(a, TimeSeries)

    def test_counter_creates_then_returns_same(self, registry):
        a = registry.counter("fabric/H1/ingress")
        assert registry.counter("fabric/H1/ingress") is a
        assert isinstance(a, CounterMonitor)

    def test_attach_same_object_is_idempotent(self, registry):
        c = CounterMonitor("bytes")
        registry.attach("link/a->b", c)
        registry.attach("link/a->b", c)
        assert len(registry) == 1

    def test_attach_conflicting_object_raises(self, registry):
        registry.attach("x", CounterMonitor())
        with pytest.raises(MetricError):
            registry.attach("x", CounterMonitor())

    def test_series_name_taken_by_counter_raises(self, registry):
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.series("x")

    def test_empty_name_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.attach("", TimeSeries())

    def test_unknown_name_raises_with_readable_message(self, registry):
        with pytest.raises(MetricError, match="unknown metric"):
            registry.get("nope")


class TestNamespaces:
    def test_names_filters_by_prefix(self, registry):
        registry.series("gpu/g0/util")
        registry.series("gpu/g1/util")
        registry.counter("fabric/H1/ingress")
        assert registry.names("gpu/") == ["gpu/g0/util", "gpu/g1/util"]
        assert len(registry.names()) == 3
        assert "gpu/g0/util" in registry


class TestQuerying:
    def test_value_series_is_time_weighted_mean(self, registry):
        ts = registry.series("util")
        ts.record(0.0, 0.0)
        ts.record(9.0, 100.0)
        ts.record(10.0, 100.0)
        assert registry.value("util", 0.0, 10.0) == pytest.approx(10.0)

    def test_value_counter_is_mean_rate(self, registry):
        c = registry.counter("bytes")
        c.add(0.0, 0.0)
        c.add(10.0, 500.0)
        assert registry.value("bytes", 0.0, 10.0) == pytest.approx(50.0)

    def test_value_gauge_calls_through(self, registry):
        registry.gauge("busy", lambda t0, t1: t1 - t0)
        assert registry.value("busy", 2.0, 5.0) == 3.0

    def test_summary_kinds(self, registry):
        registry.series("s").record(0.0, 1.0)
        registry.counter("c").add(1.0, 10.0)
        registry.gauge("g", lambda t0, t1: 42.0)
        assert registry.summary("s")["kind"] == "series"
        assert registry.summary("c")["kind"] == "counter"
        assert registry.summary("g", 0.0, 1.0) == {"kind": "gauge",
                                                   "value": 42.0}

    def test_gauge_summary_without_window_raises(self, registry):
        registry.gauge("g", lambda t0, t1: 1.0)
        with pytest.raises(MetricError):
            registry.summary("g")


class TestExport:
    def test_export_covers_all_kinds(self, registry):
        registry.series("s").record(0.0, 5.0)
        registry.counter("c").add(1.0, 10.0)
        registry.gauge("g", lambda t0, t1: 7.0)
        out = registry.export(0.0, 1.0)
        assert set(out) == {"s", "c", "g"}
        assert out["g"]["value"] == 7.0

    def test_export_without_window_skips_gauges(self, registry):
        registry.series("s").record(0.0, 5.0)
        registry.gauge("g", lambda t0, t1: 7.0)
        assert set(registry.export()) == {"s"}

    def test_export_skips_failing_and_nan_gauges(self, registry):
        def boom(t0, t1):
            raise RuntimeError("no data")

        registry.gauge("boom", boom)
        registry.gauge("nan", lambda t0, t1: float("nan"))
        registry.gauge("ok", lambda t0, t1: 1.0)
        assert set(registry.export(0.0, 1.0)) == {"ok"}

    def test_export_respects_prefix(self, registry):
        registry.series("gpu/u").record(0.0, 1.0)
        registry.series("cpu/u").record(0.0, 1.0)
        assert set(registry.export(prefix="gpu/")) == {"gpu/u"}


class TestCollectorIntegration:
    def test_collector_publishes_into_registry(self):
        from repro.core import ComposableSystem
        from repro.telemetry import MetricsCollector

        system = ComposableSystem()
        registry = MetricsRegistry()
        collector = MetricsCollector(system.env, registry=registry)
        collector.watch_gpu(system.host.gpus[0])
        collector.watch_host(system.host)
        names = registry.names()
        gpu = system.host.gpus[0].name
        assert f"gpu/{gpu}/util" in names
        assert f"gpu/{gpu}/mem" in names
        assert "host/host0/mem" in names

    def test_falcon_register_metrics(self):
        from repro.core import ComposableSystem

        system = ComposableSystem()
        registry = MetricsRegistry()
        system.falcon.register_metrics(registry)
        names = registry.names("fabric/falcon0/")
        assert any("/H1/" in n for n in names)
        assert any("ingress" in n for n in names)
        # gauges evaluate cleanly over an arbitrary window
        for name in names:
            value = registry.value(name, 0.0, 1.0)
            assert value == value or math.isnan(value)
