"""Golden conformance for the optimizing plan passes.

``golden_fig16_opt.json`` pins the optimized-plan extension of Fig. 16:
bert-large DDP-FP16 on falconGPUs under each pass pipeline.  Two things
are frozen here:

- the **no-pass path stays bit-exact** with the PR-3 plan-executor
  goldens (``golden_fig16.json``) — the optimization layer must be a
  strict no-op when disabled;
- each **pipeline's measured profile** (step time, exposed sync, time
  per sample) reproduces at 1e-9 relative, so a pass whose rewrite
  drifts — or stops closing the Falcon gap — fails loudly.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import optimized_ddp_study
from repro.experiments.software_opts import OPT_PIPELINES

_HERE = Path(__file__).parent
GOLDEN = json.loads((_HERE / "golden_fig16_opt.json").read_text())
LEGACY = json.loads((_HERE / "golden_fig16.json").read_text())

METRICS = ("step_time", "exposed_sync", "time_per_sample")


@pytest.fixture(scope="module")
def study():
    return optimized_ddp_study(sim_steps=GOLDEN["sim_steps"])


def test_golden_covers_every_pipeline():
    assert set(GOLDEN["values"]) == {name for name, _ in OPT_PIPELINES}


@pytest.mark.parametrize("pipeline",
                         [name for name, _ in OPT_PIPELINES])
def test_pipeline_profile_matches_golden(study, pipeline):
    expected = GOLDEN["values"][pipeline]
    profile = study.profiles[pipeline]
    for metric in METRICS:
        got = getattr(profile, metric)
        assert got == pytest.approx(expected[metric], rel=1e-9), \
            f"{pipeline} {metric}"


def test_no_pass_path_is_bit_exact_with_legacy_golden(study):
    # Same benchmark/config/steps as the legacy capture: with no passes
    # the new plumbing must not perturb a single bit of the step time.
    legacy = LEGACY["values"]["falconGPUs/DDP-FP16"]["step_time"]
    assert study.baseline.step_time == legacy


def test_passes_close_the_falcon_ddp_gap(study):
    # The PR's acceptance criterion: bucketing+overlap reduces the
    # exposed gradient-sync time, and the full pipeline (with the
    # topology-aware chunk sizer) cuts it dramatically.
    assert study.sync_reduction_pct("bucketing+overlap") > 1.0
    assert study.sync_reduction_pct("all") > 40.0
    assert study.step_reduction_pct("all") > 20.0
    # Optimization never makes the step slower.
    for name, _ in OPT_PIPELINES:
        assert study.profiles[name].step_time \
            <= study.baseline.step_time + 1e-12
