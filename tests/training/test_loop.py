"""Integration tests for the training loop on the composable system."""

import pytest

from repro import (
    AMP_POLICY,
    ComposableSystem,
    DataParallel,
    DistributedDataParallel,
    FP32_POLICY,
    ShardedDataParallel,
)
from repro.training.loop import TrainingConfig, TrainingJob
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def quick_result():
    """One shared small run for read-only assertions."""
    system = ComposableSystem()
    return system.train("resnet50", configuration="localGPUs", sim_steps=8)


class TestBasicRun:
    def test_result_fields(self, quick_result):
        r = quick_result
        assert r.benchmark_key == "resnet50"
        assert r.world_size == 8
        assert r.steps_simulated == 8
        assert r.step_time > 0
        assert r.checkpoint_time > 0
        assert r.t_end > r.t_start

    def test_throughput_plausible_for_v100s(self, quick_result):
        # ResNet-50 FP16 DDP on 8xV100: ~2500-4500 img/s.
        assert 2000 < quick_result.throughput < 6000

    def test_estimates_compose(self, quick_result):
        r = quick_result
        assert r.epoch_time == pytest.approx(
            r.steps_per_epoch * r.step_time
            + r.checkpoints_per_epoch * r.checkpoint_time)
        assert r.total_time >= r.epochs * r.epoch_time

    def test_summary_keys(self, quick_result):
        s = quick_result.summary()
        assert s["benchmark"] == "resnet50"
        assert s["strategy"] == "ddp"
        assert s["total_time_s"] > 0

    def test_telemetry_collected(self, quick_result):
        r = quick_result
        util = r.collector.mean_gpu_utilization(r.t_start, r.t_end)
        assert 0 < util <= 100


class TestConfigurations:
    def test_falcon_slower_than_local_for_bert(self):
        t = {}
        for cfg in ("localGPUs", "falconGPUs"):
            system = ComposableSystem()
            t[cfg] = system.train("bert-large", configuration=cfg,
                                  sim_steps=6).step_time
        assert t["falconGPUs"] > 1.5 * t["localGPUs"]

    def test_vision_overhead_small(self):
        t = {}
        for cfg in ("localGPUs", "falconGPUs"):
            system = ComposableSystem()
            t[cfg] = system.train("resnet50", configuration=cfg,
                                  sim_steps=6).step_time
        assert t["falconGPUs"] < 1.07 * t["localGPUs"]

    def test_unknown_configuration_rejected(self):
        system = ComposableSystem()
        with pytest.raises(KeyError):
            system.train("resnet50", configuration="cloudGPUs")

    def test_hybrid_uses_both_pools(self):
        system = ComposableSystem()
        active = system.configure("hybridGPUs")
        names = active.gpu_names
        assert sum(n.startswith("host0") for n in names) == 4
        assert sum(n.startswith("falcon0") for n in names) == 4


class TestStrategies:
    def test_dp_slower_than_ddp(self):
        t = {}
        for name, strategy in [("dp", DataParallel()),
                               ("ddp", DistributedDataParallel())]:
            system = ComposableSystem()
            t[name] = system.train("bert-large", strategy=strategy,
                                   sim_steps=6).step_time
        assert t["dp"] > 1.2 * t["ddp"]

    def test_fp32_slower_than_amp(self):
        t = {}
        for name, policy in [("fp32", FP32_POLICY), ("amp", AMP_POLICY)]:
            system = ComposableSystem()
            t[name] = system.train("bert-large", policy=policy,
                                   global_batch=16,
                                   sim_steps=6).step_time
        # Mixed precision gives >50% speedup (paper Fig. 16).
        assert t["fp32"] > 1.5 * t["amp"]

    def test_sharded_allows_batch_80(self):
        system = ComposableSystem()
        r = system.train("bert-large", strategy=ShardedDataParallel(),
                         global_batch=80, sim_steps=6)
        assert r.global_batch == 80

    def test_ddp_batch_80_exceeds_memory(self):
        system = ComposableSystem()
        with pytest.raises(MemoryError):
            system.train("bert-large", strategy=DistributedDataParallel(),
                         global_batch=80, sim_steps=6)


class TestValidation:
    def test_indivisible_batch_rejected(self):
        system = ComposableSystem()
        with pytest.raises(ValueError, match="divisible"):
            system.train("resnet50", global_batch=100, sim_steps=4)

    def test_needs_gpus(self):
        system = ComposableSystem()
        cfg = TrainingConfig(benchmark=get_benchmark("resnet50"))
        with pytest.raises(ValueError):
            TrainingJob(system.env, system.topology, system.host, [],
                        system.host.scratch, cfg)


class TestCheckpointing:
    def test_checkpoint_writes_to_storage(self):
        system = ComposableSystem()
        before = system.host.scratch.bytes_written.total
        system.train("resnet50", configuration="localGPUs", sim_steps=8)
        after = system.host.scratch.bytes_written.total
        model = get_benchmark("resnet50").build()
        assert after - before >= model.params * 12.0

    def test_checkpoint_faster_on_nvme(self):
        t = {}
        for cfg in ("localGPUs", "localNVMe"):
            system = ComposableSystem()
            t[cfg] = system.train("bert-large", configuration=cfg,
                                  sim_steps=6).checkpoint_time
        assert t["localNVMe"] < t["localGPUs"]


class TestStagingOverhead:
    def test_vision_staging_positive_on_scratch(self):
        system = ComposableSystem()
        r = system.train("mobilenetv2", configuration="localGPUs",
                         sim_steps=6)
        # ImageNet staging from SATA scratch exceeds one epoch of compute.
        assert r.staging_overhead >= 0

    def test_nvme_reduces_staging(self):
        t = {}
        for cfg in ("localGPUs", "localNVMe"):
            system = ComposableSystem()
            t[cfg] = system.train("yolov5l", configuration=cfg,
                                  sim_steps=6).staging_overhead
        assert t["localNVMe"] <= t["localGPUs"]
