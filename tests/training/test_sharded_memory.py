"""ZeRO-style memory math: partitioned optimizer state (paper Fig. 14).

``ShardedDataParallel`` divides optimizer state and gradients across the
data-parallel group; these tests check the arithmetic against the DDP
baseline term by term, and pin the headline Fig. 14 consequence: the
per-GPU BERT-large batch rises from 6 to 10 on 16 GB V100s.
"""

import pytest

from repro.devices.gpu import V100_PCIE_16GB
from repro.training import (
    AMP_POLICY,
    DistributedDataParallel,
    FP32_POLICY,
    ShardedDataParallel,
)
from repro.workloads import bert_large

BERT = bert_large()
CAP = V100_PCIE_16GB.memory_bytes
WORLD = 8


class TestPartitionedState:
    def test_saving_is_exactly_the_partitioned_fraction(self):
        # AMP keeps FP32 master weights + two Adam moments (12 B/param)
        # and FP16 gradients (2 B/param); sharding splits both W ways.
        ddp = DistributedDataParallel()
        sharded = ShardedDataParallel()
        m_ddp = ddp.memory_per_gpu(BERT, AMP_POLICY, 6, WORLD)
        m_sh = sharded.memory_per_gpu(BERT, AMP_POLICY, 6, WORLD)
        partitioned = BERT.params * 12.0 + BERT.gradient_bytes(
            AMP_POLICY.compute)
        expected_saving = partitioned * (WORLD - 1) / WORLD
        assert m_ddp - m_sh == pytest.approx(expected_saving, rel=1e-12)

    def test_fp32_partitions_eight_bytes_per_param(self):
        # FP32 has no separate master copy: just two Adam moments.
        ddp = DistributedDataParallel()
        sharded = ShardedDataParallel()
        m_ddp = ddp.memory_per_gpu(BERT, FP32_POLICY, 2, WORLD)
        m_sh = sharded.memory_per_gpu(BERT, FP32_POLICY, 2, WORLD)
        partitioned = BERT.params * 8.0 + BERT.gradient_bytes(
            FP32_POLICY.compute)
        assert m_ddp - m_sh == pytest.approx(
            partitioned * (WORLD - 1) / WORLD, rel=1e-12)

    def test_saving_grows_with_world_size(self):
        sharded = ShardedDataParallel()
        footprints = [sharded.memory_per_gpu(BERT, AMP_POLICY, 6, w)
                      for w in (2, 4, 8, 16)]
        assert footprints == sorted(footprints, reverse=True)

    def test_world_size_one_shards_nothing(self):
        ddp = DistributedDataParallel()
        sharded = ShardedDataParallel()
        assert sharded.memory_per_gpu(BERT, AMP_POLICY, 6, 1) == \
            ddp.memory_per_gpu(BERT, AMP_POLICY, 6, 1)

    def test_activations_are_not_sharded(self):
        # Marginal cost of one extra sample is identical: only the
        # *static* state is partitioned.
        ddp = DistributedDataParallel()
        sharded = ShardedDataParallel()
        d = ddp.memory_per_gpu(BERT, AMP_POLICY, 7, WORLD) \
            - ddp.memory_per_gpu(BERT, AMP_POLICY, 6, WORLD)
        s = sharded.memory_per_gpu(BERT, AMP_POLICY, 7, WORLD) \
            - sharded.memory_per_gpu(BERT, AMP_POLICY, 6, WORLD)
        assert d == pytest.approx(s, rel=1e-12)


class TestMaxBatch:
    def test_fig14_bert_large_6_to_10(self):
        ddp = DistributedDataParallel()
        sharded = ShardedDataParallel()
        assert ddp.max_batch_per_gpu(BERT, AMP_POLICY, CAP, WORLD) == 6
        assert sharded.max_batch_per_gpu(BERT, AMP_POLICY, CAP, WORLD) == 10

    def test_max_batch_actually_fits_and_next_does_not(self):
        sharded = ShardedDataParallel()
        batch = sharded.max_batch_per_gpu(BERT, AMP_POLICY, CAP, WORLD)
        assert sharded.memory_per_gpu(BERT, AMP_POLICY, batch, WORLD) \
            <= CAP
        assert sharded.memory_per_gpu(BERT, AMP_POLICY, batch + 1,
                                      WORLD) > CAP
