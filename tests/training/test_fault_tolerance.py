"""Fault detection, checkpoint-restart, and elastic ring recovery."""

import pytest

from repro.chaos import FaultEvent, FaultInjector
from repro.core import ComposableSystem
from repro.fabric import DeviceFailure, LinkFailure, NoRouteError
from repro.training import (
    CollectiveTimeout,
    FaultTolerantTrainingJob,
    ResilienceConfig,
    TrainingConfig,
    TrainingInterrupted,
    TrainingJob,
)
from repro.workloads import get_benchmark


def small_config(**overrides):
    defaults = dict(benchmark=get_benchmark("resnet50"), global_batch=8,
                    sim_steps=4, sim_checkpoints=0,
                    checkpoint_interval_steps=2)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def h1_link(system):
    _, link, _ = system.falcon.drawers[0].hosts["host0"][0]
    return link


class TestFaultDetection:
    def test_link_failure_interrupts_inflight_job(self):
        # Pull drawer 0's uplink mid-step: either an in-flight flow dies
        # (LinkFailure) or the next collective finds no route.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch, small_config())

        def pull_mid_run(steps_done, now):
            if steps_done == 1:
                killed = system.topology.fail_link(h1_link(system))
                outcome["killed"] = killed

        outcome = {}
        job.add_step_listener(pull_mid_run)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        exc = exc_info.value
        assert isinstance(exc.cause,
                          (LinkFailure, NoRouteError, DeviceFailure))
        if outcome["killed"]:
            assert isinstance(exc.cause, LinkFailure)
        assert exc.steps_completed < 4
        assert exc.at == system.env.now

    def test_fault_before_first_checkpoint_has_no_durable_state(self):
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          small_config(checkpoint_interval_steps=None))

        def drop_gpu(steps_done, now):
            if steps_done == 1:
                for link in system.topology.links_of("falcon0/gpu1"):
                    system.topology.fail_link(
                        link, cause=DeviceFailure("falcon0/gpu1"))

        job.add_step_listener(drop_gpu)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        assert exc_info.value.last_checkpoint_step is None

    def test_interrupted_checkpoint_rolls_back(self):
        # The uplink dies as the step-2 checkpoint begins: the d2h
        # snapshot can't cross the fabric, the write never lands, and
        # the job reports no durable checkpoint.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch, small_config())

        def pull_at_checkpoint(steps_done, now):
            if steps_done == 2:  # fires before the checkpoint starts
                system.topology.fail_link(h1_link(system))

        job.add_step_listener(pull_at_checkpoint)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        exc = exc_info.value
        assert exc.steps_completed == 2
        assert exc.last_checkpoint_step is None  # rollback to step 0

    def test_completed_checkpoint_is_durable(self):
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          small_config(sim_steps=6))
        seen = []
        job.add_checkpoint_listener(lambda step, now: seen.append(step))

        def pull_after_second_step_batch(steps_done, now):
            if steps_done == 4:
                system.topology.fail_link(h1_link(system))

        job.add_step_listener(pull_after_second_step_batch)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        # The step-2 checkpoint (index 1) completed and survives.
        assert exc_info.value.last_checkpoint_step == 1
        assert seen == [1]

    def test_collective_watchdog_times_out(self):
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          small_config(collective_timeout=1e-9))
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        assert isinstance(exc_info.value.cause, CollectiveTimeout)

    def test_memory_reconciled_after_interrupt(self):
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch, small_config())
        free_before = system.host.memory.level

        def pull(steps_done, now):
            if steps_done == 1:
                system.topology.fail_link(h1_link(system))

        job.add_step_listener(pull)
        with pytest.raises(TrainingInterrupted):
            system.env.run(until=job.start())
        assert system.host.memory.level == pytest.approx(free_before)
        for gpu in gpus:
            assert gpu.memory.level == pytest.approx(0.0, abs=1.0)


def drop_gpu_on_first_attempt(system, injector, node, at_step=2):
    """Arm a step hook that drops ``node`` once, on the first attempt."""
    fired = {}

    def arm(job, attempt):
        if attempt != 1:
            return

        def on_step(steps_done, now):
            if steps_done == at_step and "done" not in fired:
                fired["done"] = True
                injector.apply(
                    FaultEvent(now, "gpu_drop", f"node:{node}"))

        job.add_step_listener(on_step)

    return arm


@pytest.mark.chaos
class TestElasticRecovery:
    def make_ft_job(self, system, gpus, config=None, **overrides):
        resilience = ResilienceConfig(backoff_initial=0.05,
                                      reattach_attempts=2)
        kwargs = dict(resilience=resilience,
                      inventory=system.inventory,
                      event_log=system.mcs.log)
        kwargs.update(overrides)
        return FaultTolerantTrainingJob(
            system.env, system.topology, system.host, gpus,
            system.host.scratch, config or small_config(sim_steps=6),
            **kwargs)

    def test_falcon_gpu_hot_swapped_from_spare(self):
        system = ComposableSystem()
        spare = system.install_spare_gpu(drawer=0)
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon,
                                 event_log=system.mcs.log)
        ft = self.make_ft_job(system, system.falcon_gpus[:4])
        ft.on_attempt.append(
            drop_gpu_on_first_attempt(system, injector, "falcon0/gpu1"))
        result = ft.run()

        assert result.completed
        assert result.faults == 1
        assert result.attempts == 2
        assert result.final_world_size == 4  # full width restored
        kinds = [a.kind for a in result.recovery_log]
        assert "gpu_hotplug" in kinds
        assert "job_restarted" in kinds
        # The spare now belongs to the host; the dead GPU was released.
        assert system.falcon.owner_of(spare.name) == "host0"
        assert system.falcon.owner_of("falcon0/gpu1") is None
        # Recovery is operator-visible in the management audit log.
        assert system.mcs.log.query(kind="fault_detected")
        assert system.mcs.log.query(kind="gpu_hotplug")
        assert system.mcs.log.query(kind="job_restarted")
        assert result.mttr > 0
        assert result.goodput < result.raw_throughput

    def test_local_ring_shrinks_without_spares(self):
        system = ComposableSystem()
        system.install_spare_gpu(drawer=0)  # chassis spare can't help
        injector = FaultInjector(system.env, system.topology,
                                 event_log=system.mcs.log)
        local = [system.host.gpus[i] for i in (0, 4, 6, 2)]
        ft = self.make_ft_job(system, local)
        ft.on_attempt.append(
            drop_gpu_on_first_attempt(system, injector,
                                      local[1].name))
        result = ft.run()

        assert result.completed
        assert result.final_world_size == 3  # degraded to N-1
        kinds = [a.kind for a in result.recovery_log]
        assert "hotplug_unavailable" in kinds
        assert "ring_shrunk" in kinds
        assert "gpu_hotplug" not in kinds

    def test_restart_budget_exhaustion(self):
        system = ComposableSystem()
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon)
        ft = self.make_ft_job(
            system, system.falcon_gpus[:4],
            resilience=ResilienceConfig(max_restarts=0,
                                        backoff_initial=0.05,
                                        reattach_attempts=1,
                                        allow_shrink=False))
        ft.on_attempt.append(
            drop_gpu_on_first_attempt(system, injector, "falcon0/gpu1"))
        result = ft.run()
        assert not result.completed
        assert "recovery_gave_up" in [a.kind for a in result.recovery_log]

    def test_optimized_plan_link_failure_still_interrupts(self):
        # The bucketed+overlapped plan must not blunt fault detection:
        # pulling the uplink mid-step interrupts exactly like the
        # unoptimized plan.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          small_config(plan_passes="bucketing,overlap"))
        assert [r.pass_name for r in job.pass_reports] \
            == ["bucketing", "overlap"]

        def pull(steps_done, now):
            if steps_done == 1:
                system.topology.fail_link(h1_link(system))

        job.add_step_listener(pull)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        assert isinstance(exc_info.value.cause,
                          (LinkFailure, NoRouteError, DeviceFailure))
        assert exc_info.value.steps_completed < 4

    def test_optimized_recovery_converges_to_same_step_count(self):
        # Checkpoint-restart under the optimized plan must land on the
        # same step count as the unoptimized job facing the same fault.
        outcomes = {}
        for name, passes in (("plain", None),
                             ("optimized", "bucketing,overlap")):
            system = ComposableSystem()
            system.install_spare_gpu(drawer=0)
            injector = FaultInjector(system.env, system.topology,
                                     falcon=system.falcon,
                                     event_log=system.mcs.log)
            ft = self.make_ft_job(
                system, system.falcon_gpus[:4],
                config=small_config(sim_steps=6,
                                    plan_passes=passes))
            ft.on_attempt.append(drop_gpu_on_first_attempt(
                system, injector, "falcon0/gpu1"))
            outcomes[name] = ft.run()

        plain, opt = outcomes["plain"], outcomes["optimized"]
        assert plain.completed and opt.completed
        assert opt.total_steps == plain.total_steps == 6
        assert opt.attempts == plain.attempts
        assert opt.final_world_size == plain.final_world_size
        assert "gpu_hotplug" in [a.kind for a in opt.recovery_log]
        assert opt.lost_steps == plain.lost_steps
        # Rewritten plans change step timing, not training semantics:
        # the recovered rings deliver the same useful sample count.
        assert opt.samples == plain.samples

    def test_backoff_jitter_stays_within_the_configured_band(self):
        # Each recorded sleep is uniform in [nominal*(1-jitter), nominal]
        # — decorrelated retries, never longer than the deterministic
        # schedule.
        system = ComposableSystem()
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon)
        jitter = 0.5
        ft = self.make_ft_job(
            system, system.falcon_gpus[:4],
            resilience=ResilienceConfig(backoff_initial=0.1,
                                        reattach_attempts=3,
                                        backoff_jitter=jitter,
                                        allow_hot_spare=False))
        ft.on_attempt.append(
            drop_gpu_on_first_attempt(system, injector, "falcon0/gpu1"))
        result = ft.run()

        assert result.completed  # shrink path still recovers
        backoffs = [a.detail for a in result.recovery_log
                    if a.kind == "recovery_backoff"]
        assert [b["nominal_s"] for b in backoffs] \
            == pytest.approx([0.1, 0.2, 0.4])  # exponential schedule
        for b in backoffs:
            assert b["nominal_s"] * (1 - jitter) <= b["wait_s"] \
                <= b["nominal_s"]
        # The jitter draw actually perturbed at least one sleep.
        assert any(b["wait_s"] < b["nominal_s"] for b in backoffs)

    def test_backoff_jitter_is_seeded_and_reproducible(self):
        waits = []
        for _ in range(2):
            system = ComposableSystem()
            injector = FaultInjector(system.env, system.topology,
                                     falcon=system.falcon)
            ft = self.make_ft_job(
                system, system.falcon_gpus[:4],
                resilience=ResilienceConfig(backoff_initial=0.1,
                                            reattach_attempts=3,
                                            backoff_jitter=0.5,
                                            allow_hot_spare=False))
            ft.on_attempt.append(drop_gpu_on_first_attempt(
                system, injector, "falcon0/gpu1"))
            result = ft.run()
            waits.append([a.detail["wait_s"] for a in result.recovery_log
                          if a.kind == "recovery_backoff"])
        assert waits[0] == waits[1]

    def test_retry_budget_caps_cumulative_backoff(self):
        # budget 0.12s: the first poll sleeps 0.1, the second is clamped
        # to the 0.02 remainder, the third finds the budget spent and
        # stops polling — the exhaustion is recorded and surfaces in the
        # terminal reason.
        system = ComposableSystem()
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon)
        ft = self.make_ft_job(
            system, system.falcon_gpus[:4],
            resilience=ResilienceConfig(backoff_initial=0.1,
                                        reattach_attempts=4,
                                        retry_budget_s=0.12,
                                        allow_hot_spare=False,
                                        allow_shrink=False))
        ft.on_attempt.append(
            drop_gpu_on_first_attempt(system, injector, "falcon0/gpu1"))
        result = ft.run()

        assert not result.completed
        backoffs = [a.detail for a in result.recovery_log
                    if a.kind == "recovery_backoff"]
        assert [b["nominal_s"] for b in backoffs] \
            == pytest.approx([0.1, 0.02])  # clamped to the remainder
        exhausted = [a for a in result.recovery_log
                     if a.kind == "reattach_budget_exhausted"]
        assert exhausted[0].detail["budget_s"] == pytest.approx(0.12)
        assert exhausted[0].detail["polls"] == 2
        assert "falcon0/gpu1" in exhausted[0].detail["unreachable"]
        # The exhaustion is part of the clear give-up reason.
        assert "retry budget" in result.interrupted_reason
        assert "shrink disabled" in result.interrupted_reason

    def test_transient_fault_needs_no_ring_surgery(self):
        # A port flap heals within the backoff budget: pure
        # checkpoint-restart, no hot-plug, no shrink.
        system = ComposableSystem()
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon,
                                 event_log=system.mcs.log)

        def flap(job, attempt):
            if attempt != 1:
                return

            def on_step(steps_done, now):
                if steps_done == 2:
                    injector.apply(FaultEvent(now, "port_flap", "port:H1",
                                              {"down": 0.02}))

            job.add_step_listener(on_step)

        ft = self.make_ft_job(system, system.falcon_gpus[:4])
        ft.on_attempt.append(flap)
        result = ft.run()
        assert result.completed
        assert result.final_world_size == 4
        kinds = [a.kind for a in result.recovery_log]
        assert "gpu_hotplug" not in kinds
        assert "ring_shrunk" not in kinds
        assert "job_restarted" in kinds
