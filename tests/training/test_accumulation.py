"""Tests for gradient accumulation (no_sync micro-stepping)."""

import pytest

from repro import ComposableSystem
from repro.training import DataParallel, DistributedDataParallel


class TestValidation:
    def test_accumulation_must_divide_batch(self):
        system = ComposableSystem()
        with pytest.raises(ValueError, match="divisible"):
            system.train("bert-large", global_batch=48, sim_steps=2,
                         accumulation_steps=5)

    def test_accumulation_must_be_positive(self):
        system = ComposableSystem()
        with pytest.raises(ValueError):
            system.train("bert-large", global_batch=48, sim_steps=2,
                         accumulation_steps=0)


class TestSemantics:
    def test_accumulation_enables_oversize_batch(self):
        """Effective global batch 96 exceeds DDP memory at accumulation 1
        but fits with 2 micro-steps (activations sized per micro-batch)."""
        system = ComposableSystem()
        with pytest.raises(MemoryError):
            system.train("bert-large", global_batch=96, sim_steps=2,
                         strategy=DistributedDataParallel())
        system = ComposableSystem()
        result = system.train("bert-large", global_batch=96, sim_steps=4,
                              strategy=DistributedDataParallel(),
                              accumulation_steps=2)
        assert result.global_batch == 96

    def test_step_time_roughly_doubles_with_two_microsteps(self):
        times = {}
        for accum, batch in [(1, 48), (2, 96)]:
            system = ComposableSystem()
            r = system.train("bert-large", global_batch=batch,
                             sim_steps=4, accumulation_steps=accum)
            times[accum] = r.step_time
        assert times[2] == pytest.approx(2 * times[1], rel=0.25)

    def test_sync_volume_independent_of_accumulation(self):
        """Gradients are synchronized once per optimizer step, so the
        per-sample communication cost drops with accumulation."""
        throughputs = {}
        for accum, batch in [(1, 48), (2, 96)]:
            system = ComposableSystem()
            r = system.train("bert-large", configuration="falconGPUs",
                             global_batch=batch, sim_steps=4,
                             accumulation_steps=accum)
            throughputs[accum] = r.throughput
        # On the communication-bound falcon config, amortizing the
        # allreduce over 2x the samples raises throughput.
        assert throughputs[2] > 1.15 * throughputs[1]

    def test_dp_supports_accumulation(self):
        system = ComposableSystem()
        r = system.train("bert-large", global_batch=96, sim_steps=3,
                         strategy=DataParallel(), accumulation_steps=2)
        assert r.step_time > 0
