"""Golden pins + engine equivalence for the new strategy compilers.

``golden_matrix.json`` records end-to-end training timings for the
tensor-parallel, 2D (tensor x data), and fully-sharded strategies on
both backends at their fitted bert-large operating points.  Two
contracts:

- the trained metrics match the golden capture at 1e-9 relative, so any
  drift in the compilers, the grouped-collective rendezvous, or the
  executor fails loudly;
- for every grid cell — with and without the full optimizing pass
  pipeline — the fast-path engine and the event-loop executor evaluate
  the same compiled plan identically (``assert_equivalence`` compares
  every op's start/end and the makespan at 1e-9).
"""

import json
from pathlib import Path

import pytest

from repro.core import ComposableSystem
from repro.plan import evaluate_plan, validate_plan
from repro.training import STRATEGY_REGISTRY, TrainingConfig, TrainingJob
from repro.workloads import get_benchmark

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_matrix.json").read_text())

METRICS = ("step_time", "step_time_std", "checkpoint_time",
           "throughput", "total_time")

CONFIGS = ("localGPUs", "falconGPUs")

CASES = [(config, name) for config in CONFIGS
         for name in GOLDEN["operating_points"]]


def _operating_point(name):
    gb, acc = GOLDEN["operating_points"][name]
    return gb, acc


def build_job(config, name, passes):
    gb, acc = _operating_point(name)
    system = ComposableSystem()
    active = system.configure(config)
    cfg = TrainingConfig(
        benchmark=get_benchmark(GOLDEN["benchmark"]),
        strategy=STRATEGY_REGISTRY[name](),
        global_batch=gb,
        accumulation_steps=acc,
        plan_passes=passes,
    )
    return TrainingJob(system.env, system.topology, system.host,
                       list(active.gpus), active.storage, cfg)


def test_golden_covers_every_new_strategy():
    assert set(GOLDEN["operating_points"]) == {"tp", "2d", "fsdp"}
    assert set(GOLDEN["values"]) == {f"{c}/{n}" for c, n in CASES}


@pytest.mark.parametrize("config,name", CASES,
                         ids=[f"{c}/{n}" for c, n in CASES])
def test_trained_metrics_match_golden(config, name):
    gb, acc = _operating_point(name)
    result = ComposableSystem().train(
        GOLDEN["benchmark"],
        configuration=config,
        strategy=STRATEGY_REGISTRY[name](),
        global_batch=gb,
        accumulation_steps=acc,
        sim_steps=GOLDEN["sim_steps"],
    )
    expected = GOLDEN["values"][f"{config}/{name}"]
    for metric in METRICS:
        got = getattr(result, metric)
        want = expected[metric]
        assert got == pytest.approx(want, rel=1e-9), \
            f"{config}/{name} {metric}: {got!r} != {want!r}"


@pytest.mark.parametrize(
    "config,name,passes",
    [(c, n, p) for c, n in CASES for p in (None, "all")],
    ids=[f"{c}/{n}/{p or 'no-passes'}"
         for c, n in CASES for p in (None, "all")])
def test_fastpath_matches_executor_on_matrix_plans(config, name, passes):
    job = build_job(config, name, passes)
    assert validate_plan(job.step_plan) == []
    timing = evaluate_plan(job.step_plan, job._exec_ctx,
                           assert_equivalence=True)
    assert timing.mode == "fastpath"
    assert timing.makespan > 0.0


@pytest.mark.parametrize("config,name", CASES,
                         ids=[f"{c}/{n}" for c, n in CASES])
def test_passes_never_slow_the_plan(config, name):
    """The optimizing pipeline must pay for itself on every cell."""
    base_job = build_job(config, name, None)
    base = evaluate_plan(base_job.step_plan, base_job._exec_ctx)
    opt_job = build_job(config, name, "all")
    opt = evaluate_plan(opt_job.step_plan, opt_job._exec_ctx)
    assert opt.makespan <= base.makespan * (1 + 1e-9)
