"""Cross-strategy invariants over every registered compiler's output.

At a fixed model and global batch, all parallelization strategies do
the same *training math* — they only place it differently.  Three
checkable consequences, over all seven registered strategies:

- **compute conservation** — summed forward+backward FLOPs across the
  whole plan equal 3x the model's forward FLOPs for the global batch,
  regardless of how ranks/groups/stages split the work;
- **gradient traffic** — total ``gradients``-tagged collective payload
  follows each strategy's reduction structure exactly: ``world x
  gradient_bytes`` for the data-parallel family, ``dp_degree x
  gradient_bytes`` for the 2D grid (each of its ``dp`` data groups
  moves one tensor-shard's worth per member), zero for pure tensor
  parallelism (gradients never cross ranks, activations do);
- **structural validity** — every compiled plan passes the full
  validator (structure, cycles, per-communicator rank symmetry, bytes
  conservation).

Plus a regression guard on the compile memo: strategy knobs that change
the plan (``tp_degree``, ``layer_groups``) must miss the cache.
"""

import math

import pytest

from repro.core import ComposableSystem
from repro.plan import Collective, Compute, validate_plan
from repro.training import (
    STRATEGY_REGISTRY,
    TensorParallel,
    TrainingConfig,
    TrainingJob,
    TwoDParallel,
    clear_plan_compile_cache,
    plan_compile_stats,
)
from repro.workloads import get_benchmark

WORLD = 4
GLOBAL_BATCH = 16
BENCH = "resnet50"


def build_job(strategy, **cfg_kwargs):
    system = ComposableSystem()
    cfg = TrainingConfig(benchmark=get_benchmark(BENCH),
                         strategy=strategy,
                         global_batch=GLOBAL_BATCH,
                         **cfg_kwargs)
    gpus = system.host.gpus[:WORLD]
    return TrainingJob(system.env, system.topology, system.host,
                       gpus, system.host.scratch, cfg)


def train_flops(plan):
    return sum(op.flops for op in plan
               if isinstance(op, Compute)
               and op.name.startswith(("forward", "backward")))


def gradient_wire_bytes(plan):
    return sum(op.bytes for op in plan
               if isinstance(op, Collective)
               and op.payload == "gradients")


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_plan_compile_cache()
    yield
    clear_plan_compile_cache()


@pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
def test_plan_is_valid_at_world_4(name):
    job = build_job(STRATEGY_REGISTRY[name]())
    assert validate_plan(job.step_plan) == []


def test_total_train_flops_identical_across_strategies():
    model = get_benchmark(BENCH).build()
    expected = 3.0 * model.forward_flops_per_sample * GLOBAL_BATCH
    for name in sorted(STRATEGY_REGISTRY):
        job = build_job(STRATEGY_REGISTRY[name]())
        total = train_flops(job.step_plan)
        assert math.isclose(total, expected, rel_tol=1e-9), \
            f"{name}: {total} != {expected}"


def test_total_train_flops_invariant_under_accumulation():
    model = get_benchmark(BENCH).build()
    expected = 3.0 * model.forward_flops_per_sample * GLOBAL_BATCH
    for name in sorted(STRATEGY_REGISTRY):
        job = build_job(STRATEGY_REGISTRY[name](), accumulation_steps=2)
        total = train_flops(job.step_plan)
        assert math.isclose(total, expected, rel_tol=1e-9), \
            f"{name}@acc2: {total} != {expected}"


def test_gradient_traffic_follows_reduction_structure():
    model = get_benchmark(BENCH).build()
    job = build_job(STRATEGY_REGISTRY["ddp"]())
    gbytes = model.gradient_bytes(job.config.policy.compute)
    expectations = {
        "dp": WORLD * gbytes,
        "ddp": WORLD * gbytes,
        "sharded": WORLD * gbytes,
        "fsdp": WORLD * gbytes,
        # Each of the tp_degree data groups allreduces one
        # gradient_bytes/tp_degree shard across its dp members.
        "2d": (WORLD // 2) * gbytes,
        # Gradients are already rank-local under pure TP; only
        # activations cross the wire.
        "tp": 0.0,
    }
    for name, expected in expectations.items():
        plan = build_job(STRATEGY_REGISTRY[name]()).step_plan
        total = gradient_wire_bytes(plan)
        assert total == pytest.approx(expected, rel=1e-9, abs=1e-6), \
            f"{name}: {total} != {expected}"


def test_tp_moves_activations_not_gradients():
    plan = build_job(TensorParallel()).step_plan
    acts = sum(op.bytes for op in plan
               if isinstance(op, Collective)
               and op.payload == "activations")
    assert acts > 0
    assert gradient_wire_bytes(plan) == 0.0


def test_compile_memo_distinguishes_strategy_knobs():
    build_job(TwoDParallel(tp_degree=2))
    assert plan_compile_stats() == {"hits": 0, "misses": 1}
    # A different grid shape is a different plan: must miss.
    four = build_job(TwoDParallel(tp_degree=4))
    assert plan_compile_stats() == {"hits": 0, "misses": 2}
    # Same knobs again: must hit and share the object.
    two = build_job(TwoDParallel(tp_degree=2))
    assert plan_compile_stats() == {"hits": 1, "misses": 2}
    assert two.step_plan is not four.step_plan
    assert two.step_plan.meta["tp_degree"] == 2
    assert four.step_plan.meta["tp_degree"] == 4


def test_compile_memo_distinguishes_layer_groups():
    build_job(TensorParallel(layer_groups=4))
    build_job(TensorParallel(layer_groups=2))
    assert plan_compile_stats() == {"hits": 0, "misses": 2}
