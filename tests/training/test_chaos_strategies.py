"""Chaos under the new strategy compilers: faults mid grouped collective.

Tensor and 2D parallelism rendezvous on *subgroup* communicators, so
fault detection has new surface to cover: a link failure must kill an
in-flight tensor-parallel all-gather, and losing one device of a 2D
rank grid must interrupt both its tensor group (all-gather/allreduce
members) and its data-parallel group — then checkpoint-restart with a
hot-plugged spare must restore the full grid, since a 2D layout cannot
shrink below its tensor degree's divisibility.
"""

import pytest

from repro.chaos import FaultEvent, FaultInjector
from repro.core import ComposableSystem
from repro.fabric import DeviceFailure, LinkFailure, NoRouteError
from repro.training import (
    FaultTolerantTrainingJob,
    ResilienceConfig,
    TensorParallel,
    TrainingConfig,
    TrainingInterrupted,
    TrainingJob,
    TwoDParallel,
)
from repro.workloads import get_benchmark


def strategy_config(strategy, **overrides):
    defaults = dict(benchmark=get_benchmark("resnet50"), global_batch=8,
                    strategy=strategy, sim_steps=4, sim_checkpoints=0,
                    checkpoint_interval_steps=2)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def uplink(system):
    _, link, _ = system.falcon.drawers[0].hosts["host0"][0]
    return link


@pytest.mark.chaos
class TestGroupedCollectiveFaultDetection:
    def test_link_failure_mid_tp_allgather_interrupts(self):
        # TP's step is dominated by per-layer-group boundary all-gathers
        # on the world communicator's GPUs; pulling the drawer uplink
        # after step 1 kills the next one in flight.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          strategy_config(TensorParallel()))

        def pull_mid_run(steps_done, now):
            if steps_done == 1:
                system.topology.fail_link(uplink(system))

        job.add_step_listener(pull_mid_run)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        exc = exc_info.value
        assert isinstance(exc.cause,
                          (LinkFailure, NoRouteError, DeviceFailure))
        assert exc.steps_completed < 4

    def test_device_failure_in_2d_grid_row_interrupts(self):
        # 2x2 grid on four falcon GPUs: rank 1 sits in tensor group
        # (0, 1) and data group (1, 3).  Dropping its device must
        # interrupt the job even though ranks 2 and 3's tensor group
        # never communicates with it directly.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        dead = gpus[1].name
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          strategy_config(TwoDParallel(tp_degree=2)))

        def drop_grid_member(steps_done, now):
            if steps_done == 1:
                for link in system.topology.links_of(dead):
                    system.topology.fail_link(
                        link, cause=DeviceFailure(dead))

        job.add_step_listener(drop_grid_member)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        exc = exc_info.value
        assert isinstance(exc.cause, (DeviceFailure, NoRouteError,
                                      LinkFailure))
        assert exc.steps_completed < 4

    def test_tp_checkpoint_survives_late_fault(self):
        # The step-2 checkpoint completes before the fault, so the
        # interrupted TP job reports durable state to restart from.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch,
                          strategy_config(TensorParallel(), sim_steps=6))

        def pull_late(steps_done, now):
            if steps_done == 4:
                system.topology.fail_link(uplink(system))

        job.add_step_listener(pull_late)
        with pytest.raises(TrainingInterrupted) as exc_info:
            system.env.run(until=job.start())
        assert exc_info.value.last_checkpoint_step == 1


@pytest.mark.chaos
class TestGridRecovery:
    def make_ft_job(self, system, gpus, config):
        return FaultTolerantTrainingJob(
            system.env, system.topology, system.host, gpus,
            system.host.scratch, config,
            resilience=ResilienceConfig(backoff_initial=0.05,
                                        reattach_attempts=2,
                                        allow_shrink=False),
            inventory=system.inventory,
            event_log=system.mcs.log)

    def _drop_once(self, system, injector, node, at_step=2):
        fired = {}

        def arm(job, attempt):
            if attempt != 1:
                return

            def on_step(steps_done, now):
                if steps_done == at_step and "done" not in fired:
                    fired["done"] = True
                    injector.apply(
                        FaultEvent(now, "gpu_drop", f"node:{node}"))

            job.add_step_listener(on_step)

        return arm

    def test_2d_grid_restored_by_hot_swap_and_restart(self):
        # A 2D layout cannot shrink to three ranks (3 % tp_degree != 0),
        # so recovery must hot-plug the chassis spare, restore the full
        # 2x2 grid, and restart from the durable checkpoint.
        system = ComposableSystem()
        system.install_spare_gpu(drawer=0)
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon,
                                 event_log=system.mcs.log)
        gpus = system.falcon_gpus[:4]
        ft = self.make_ft_job(
            system, gpus,
            strategy_config(TwoDParallel(tp_degree=2), sim_steps=6))
        ft.on_attempt.append(
            self._drop_once(system, injector, gpus[1].name))
        result = ft.run()

        assert result.completed
        assert result.faults == 1
        assert result.attempts == 2
        assert result.final_world_size == 4
        kinds = [a.kind for a in result.recovery_log]
        assert "gpu_hotplug" in kinds
        assert "job_restarted" in kinds
        assert "ring_shrunk" not in kinds
        assert system.mcs.log.query(kind="fault_detected")

    def test_tp_restart_from_checkpoint_after_device_loss(self):
        system = ComposableSystem()
        system.install_spare_gpu(drawer=0)
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon,
                                 event_log=system.mcs.log)
        gpus = system.falcon_gpus[:4]
        ft = self.make_ft_job(
            system, gpus,
            strategy_config(TensorParallel(), sim_steps=6))
        ft.on_attempt.append(
            self._drop_once(system, injector, gpus[2].name, at_step=3))
        result = ft.run()

        assert result.completed
        assert result.faults == 1
        assert result.final_world_size == 4
        kinds = [a.kind for a in result.recovery_log]
        assert "gpu_hotplug" in kinds
        assert "job_restarted" in kinds
