"""TrainingConfig rejects nonsense at construction, not mid-simulation."""

import pytest

from repro.training import TrainingConfig
from repro.workloads import get_benchmark

BENCH = get_benchmark("bert-large")


class TestSimSteps:
    @pytest.mark.parametrize("steps", [0, -1, -24])
    def test_non_positive_rejected(self, steps):
        with pytest.raises(ValueError, match="sim_steps must be a "
                                             "positive step count"):
            TrainingConfig(benchmark=BENCH, sim_steps=steps)

    def test_positive_accepted(self):
        assert TrainingConfig(benchmark=BENCH, sim_steps=1).sim_steps == 1


class TestAccumulation:
    @pytest.mark.parametrize("accum", [0, -3])
    def test_sub_one_rejected(self, accum):
        with pytest.raises(ValueError, match="accumulation_steps must "
                                             "be >= 1"):
            TrainingConfig(benchmark=BENCH, accumulation_steps=accum)

    def test_error_names_the_value(self):
        with pytest.raises(ValueError, match="got 0"):
            TrainingConfig(benchmark=BENCH, accumulation_steps=0)


class TestCheckpointInterval:
    def test_negative_rejected(self):
        with pytest.raises(ValueError,
                           match="checkpoint_interval_steps"):
            TrainingConfig(benchmark=BENCH, checkpoint_interval_steps=-1)

    @pytest.mark.parametrize("interval", [None, 0, 5])
    def test_none_disabled_and_cadence_accepted(self, interval):
        config = TrainingConfig(benchmark=BENCH,
                                checkpoint_interval_steps=interval)
        assert config.checkpoint_interval_steps == interval
