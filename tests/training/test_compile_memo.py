"""The process-wide compile memo: identical cells share one step plan."""

import pytest

from repro.core import ComposableSystem
from repro.training import (
    DistributedDataParallel,
    TrainingConfig,
    TrainingJob,
    clear_plan_compile_cache,
    plan_compile_stats,
)
from repro.workloads import get_benchmark


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_plan_compile_cache()
    yield
    clear_plan_compile_cache()


def build_job(config_name="localGPUs", **cfg_kwargs):
    system = ComposableSystem()
    active = system.configure(config_name)
    cfg = TrainingConfig(benchmark=get_benchmark("bert-large"),
                         strategy=DistributedDataParallel(),
                         **cfg_kwargs)
    return TrainingJob(system.env, system.topology, system.host,
                       list(active.gpus), active.storage, cfg)


def test_identical_jobs_hit_the_memo():
    first = build_job()
    assert plan_compile_stats() == {"hits": 0, "misses": 1}
    second = build_job()
    assert plan_compile_stats() == {"hits": 1, "misses": 1}
    # Hits share the very same compiled plan object.
    assert second.step_plan is first.step_plan


def test_different_cells_miss():
    build_job()
    build_job(config_name="falconGPUs")  # different GPU attachment
    build_job(global_batch=16)           # different batch
    assert plan_compile_stats()["misses"] == 3
    assert plan_compile_stats()["hits"] == 0


def test_same_specs_different_ring_membership_misses():
    # Two rings of identical GPU models but different chassis members
    # must not share a plan: the memo key includes the rank -> node-name
    # roster, which topology-aware passes and the elastic reshard splice
    # both depend on.
    system = ComposableSystem()
    cfg = TrainingConfig(benchmark=get_benchmark("bert-large"),
                         strategy=DistributedDataParallel(),
                         global_batch=8)
    for gpus in (system.falcon_gpus[:4], system.falcon_gpus[4:8]):
        TrainingJob(system.env, system.topology, system.host,
                    list(gpus), system.host.scratch, cfg)
    assert plan_compile_stats() == {"hits": 0, "misses": 2}


def test_passes_do_not_poison_the_shared_plan():
    plain = build_job()
    optimized = build_job(plan_passes="all")
    # The pass pipeline hit the memo for the pre-pass plan, then rewrote
    # a copy — the cached plan itself must stay untouched.
    assert plan_compile_stats() == {"hits": 1, "misses": 1}
    assert optimized.step_plan is not plain.step_plan
    again = build_job()
    assert again.step_plan is plain.step_plan


def test_clear_resets_stats_and_entries():
    build_job()
    clear_plan_compile_cache()
    assert plan_compile_stats() == {"hits": 0, "misses": 0}
    build_job()
    assert plan_compile_stats() == {"hits": 0, "misses": 1}
