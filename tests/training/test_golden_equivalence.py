"""Golden equivalence: the plan executor reproduces pre-refactor timings.

``golden_fig16.json`` records step/checkpoint/total timings produced by
the hand-written ``run_step`` strategy generators for every Fig. 16
variant on the local and Falcon GPU configurations.  The strategies are
now compilers and the trainer replays their plans through the generic
executor — these tests pin the refactor to the old numbers at 1e-9
relative, so any drift in op scheduling, overlap accounting, or
checkpoint sequencing fails loudly.
"""

import json
from pathlib import Path

import pytest

from repro.core import ComposableSystem
from repro.experiments.software_opts import VARIANTS

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_fig16.json").read_text())

METRICS = ("step_time", "step_time_std", "checkpoint_time",
           "throughput", "total_time")

CASES = [
    (config, variant)
    for config in ("localGPUs", "falconGPUs")
    for variant in VARIANTS
    if f"{config}/{variant.name}" in GOLDEN["values"]
]


def test_golden_covers_every_legacy_variant():
    # 5 legacy variants x 2 configurations (Pipeline-FP16 postdates the
    # golden capture and is exercised end-to-end elsewhere).
    assert len(CASES) == 10


@pytest.mark.parametrize(
    "config,variant", CASES,
    ids=[f"{c}/{v.name}" for c, v in CASES])
def test_plan_executor_matches_golden(config, variant):
    result = ComposableSystem().train(
        GOLDEN["benchmark"],
        configuration=config,
        strategy=variant.strategy_factory(),
        policy=variant.policy,
        global_batch=variant.global_batch,
        sim_steps=GOLDEN["sim_steps"],
    )
    expected = GOLDEN["values"][f"{config}/{variant.name}"]
    for metric in METRICS:
        got = getattr(result, metric)
        want = expected[metric]
        assert got == pytest.approx(want, rel=1e-9), \
            f"{config}/{variant.name} {metric}: {got!r} != {want!r}"
