"""Property-based tests on collective-communication invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import GB, LinkSpec, Protocol, Topology
from repro.sim import Environment
from repro.training import Communicator
from repro.training.collectives import TRANSPORT_PENALTY


def ring_topology(env, n, bw_gbps=10.0):
    topo = Topology(env)
    names = [f"g{i}" for i in range(n)]
    spec = LinkSpec("t", Protocol.NVLINK2, 1, bw_gbps * GB, 0.0)
    for name in names:
        topo.add_node(name, kind="gpu")
    # n == 2 needs a single (full-duplex) link, not two parallel ones.
    for i in range(n if n > 2 else 1):
        topo.add_link(spec, names[i], names[(i + 1) % n])
    return topo, names


def run_allreduce(n, nbytes, bw_gbps=10.0):
    env = Environment()
    topo, names = ring_topology(env, n, bw_gbps)
    comm = Communicator(env, topo, names)
    events = [comm.allreduce(r, nbytes) for r in range(n)]
    env.run(until=events[0])
    return env.now, topo


class TestAllreduceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        mbytes=st.floats(min_value=1.0, max_value=500.0),
    )
    def test_bandwidth_lower_bound(self, n, mbytes):
        """Allreduce time >= the ring bandwidth term
        2(N-1)/N x B / link_bw (with the NVLink transport factor)."""
        nbytes = mbytes * 1e6
        elapsed, _ = run_allreduce(n, nbytes)
        penalty = TRANSPORT_PENALTY[Protocol.NVLINK2]
        bound = 2 * (n - 1) / n * nbytes * penalty / (10.0 * GB)
        assert elapsed >= bound * (1 - 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        mbytes=st.floats(min_value=1.0, max_value=200.0),
    )
    def test_traffic_symmetric_across_ranks(self, n, mbytes):
        """Every ring link moves the same number of bytes."""
        nbytes = mbytes * 1e6
        _, topo = run_allreduce(n, nbytes)
        moved = []
        for link in topo.links():
            total = sum(c.total for c in link.counters.values())
            moved.append(total)
        assert max(moved) == pytest.approx(min(moved), rel=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(mbytes=st.floats(min_value=1.0, max_value=200.0))
    def test_time_affine_in_volume(self, mbytes):
        """Time is affine in payload: a fixed per-phase setup cost plus a
        bandwidth term, so the marginal cost of extra bytes is constant."""
        t1, _ = run_allreduce(4, mbytes * 1e6)
        t2, _ = run_allreduce(4, 2 * mbytes * 1e6)
        t3, _ = run_allreduce(4, 3 * mbytes * 1e6)
        assert t3 - t2 == pytest.approx(t2 - t1, rel=1e-6)
        assert t2 > t1

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=8))
    def test_bandwidth_term_saturates_with_world_size(self, n):
        """Per the 2(N-1)/N law, time grows sublinearly and approaches
        2B/bw as N grows."""
        nbytes = 80e6
        t, _ = run_allreduce(n, nbytes)
        penalty = TRANSPORT_PENALTY[Protocol.NVLINK2]
        asymptote = 2 * nbytes * penalty / (10.0 * GB)
        assert t <= asymptote * (1 + 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        rounds=st.integers(min_value=1, max_value=4),
    )
    def test_sequential_collectives_additive(self, n, rounds):
        env = Environment()
        topo, names = ring_topology(env, n)
        comm = Communicator(env, topo, names)

        def rank(r):
            for _ in range(rounds):
                yield comm.allreduce(r, 40e6)

        procs = [env.process(rank(r)) for r in range(n)]
        env.run()
        single, _ = run_allreduce(n, 40e6)
        assert env.now == pytest.approx(rounds * single, rel=1e-6)
        assert comm.completed_ops == rounds
