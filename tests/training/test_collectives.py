"""Unit tests for the NCCL-style communicator."""

import pytest

from repro.fabric import GB, NVLINK2_X1, PCIE_GEN4_X16, Topology
from repro.sim import Environment
from repro.training import CollectiveError, Communicator


def ring_topology(env, n=4, spec=NVLINK2_X1):
    """n GPUs in a simple ring (each adjacent pair directly linked)."""
    topo = Topology(env)
    names = [f"g{i}" for i in range(n)]
    for name in names:
        topo.add_node(name, kind="gpu")
    for i in range(n):
        topo.add_link(spec, names[i], names[(i + 1) % n])
    return topo, names


def run_collective(env, comm, op, nbytes, **kw):
    events = [getattr(comm, op)(rank, nbytes, **kw)
              for rank in range(comm.world_size)]
    env.run(until=events[0])
    return env.now


class TestRendezvous:
    def test_allreduce_waits_for_all_ranks(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        done = comm.allreduce(0, 1 * GB)
        env.run(until=10.0)
        assert not done.triggered  # ranks 1-3 never arrived

    def test_straggler_sets_start_time(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        finish = {}

        def rank(r, delay):
            yield env.timeout(delay)
            yield comm.allreduce(r, 1e6)
            finish[r] = env.now

        for r in range(4):
            env.process(rank(r, 5.0 if r == 3 else 0.0))
        env.run()
        assert all(t > 5.0 for t in finish.values())

    def test_mismatched_collective_rejected(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        comm.allreduce(0, 100.0)
        with pytest.raises(CollectiveError, match="mismatch"):
            comm.broadcast(1, 100.0)

    def test_mismatched_bytes_rejected(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        comm.allreduce(0, 100.0)
        with pytest.raises(CollectiveError):
            comm.allreduce(1, 200.0)

    def test_double_join_rejected(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        comm.allreduce(0, 100.0)
        # Rank 0's *next* call is op 1; rank 1 joining op 0 is fine, but a
        # mismatched second arrival for the same (rank, op) is caught via
        # op sequencing — simulate by a manual duplicate join.
        with pytest.raises(CollectiveError):
            comm._join(0, "allreduce", 100.0, None)
            comm._op_seq[0] = 0  # force reuse
            comm._join(0, "allreduce", 100.0, None)

    def test_rank_out_of_range(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        with pytest.raises(CollectiveError):
            comm.allreduce(4, 1.0)
        with pytest.raises(CollectiveError):
            comm.allreduce(0, -1.0)
        with pytest.raises(CollectiveError):
            comm.broadcast(0, 1.0, root=9)

    def test_duplicate_ranks_rejected(self):
        env = Environment()
        topo, names = ring_topology(env)
        with pytest.raises(CollectiveError):
            Communicator(env, topo, [names[0], names[0]])


class TestSemantics:
    def test_single_rank_collectives_are_free(self):
        env = Environment()
        topo = Topology(env)
        topo.add_node("g0", kind="gpu")
        comm = Communicator(env, topo, ["g0"])
        t = run_collective(env, comm, "allreduce", 1 * GB)
        assert t == 0.0

    def test_barrier_moves_no_data(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        events = [comm.barrier(r) for r in range(4)]
        env.run(until=events[0])
        for link in topo.links():
            for counter in link.counters.values():
                assert counter.total == 0.0

    def test_allreduce_traffic_volume(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        nbytes = 4e6
        run_collective(env, comm, "allreduce", nbytes)
        # Ring allreduce: each rank sends 2(N-1)/N x nbytes, inflated by
        # the NVLink transport penalty (1.05).
        expected_per_rank = comm.allreduce_bytes_on_wire(nbytes) * 1.05
        total = sum(c.total for link in topo.links()
                    for c in link.counters.values())
        assert total == pytest.approx(4 * expected_per_rank, rel=1e-6)

    def test_reduce_scatter_is_half_allreduce(self):
        env = Environment()
        topo, names = ring_topology(env)
        c1 = Communicator(env, topo, names)
        t_ar = run_collective(env, c1, "allreduce", 80e6)
        c2 = Communicator(env, topo, names)
        t0 = env.now
        events = [c2.reduce_scatter(r, 80e6) for r in range(4)]
        env.run(until=events[0])
        t_rs = env.now - t0
        assert t_rs == pytest.approx(t_ar / 2, rel=0.05)

    def test_broadcast_bottlenecks_at_root(self):
        env = Environment()
        # Star: root connected to 3 leaves via separate links.
        topo = Topology(env)
        names = ["root", "a", "b", "c"]
        for n in names:
            topo.add_node(n, kind="gpu")
        topo.add_node("sw", kind="sw", transit=True)
        for n in names:
            topo.add_link(PCIE_GEN4_X16, n, "sw")
        comm = Communicator(env, topo, names)
        nbytes = 12.3 * GB / 2.2  # 1 s per leaf at line rate after penalty
        events = [comm.broadcast(r, nbytes, root=0) for r in range(4)]
        env.run(until=events[0])
        # Root's single uplink serves 3 concurrent sends -> ~3 s.
        assert env.now == pytest.approx(3.0, rel=0.02)

    def test_allreduce_bytes_on_wire_formula(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)
        assert comm.allreduce_bytes_on_wire(8.0) == pytest.approx(
            2 * 3 / 4 * 8.0)

    def test_sequential_collectives_complete(self):
        env = Environment()
        topo, names = ring_topology(env)
        comm = Communicator(env, topo, names)

        def rank(r):
            for _ in range(3):
                yield comm.allreduce(r, 1e6)

        procs = [env.process(rank(r)) for r in range(4)]
        env.run()
        assert comm.completed_ops == 3
        assert all(p.ok for p in procs)

    def test_nvlink_ring_faster_than_pcie_ring(self):
        env = Environment()
        topo_nv, names_nv = ring_topology(env, spec=NVLINK2_X1)
        comm_nv = Communicator(env, topo_nv, names_nv)
        t0 = env.now
        events = [comm_nv.allreduce(r, 100e6) for r in range(4)]
        env.run(until=events[0])
        t_nv = env.now - t0

        env2 = Environment()
        topo_p, names_p = ring_topology(env2, spec=PCIE_GEN4_X16)
        comm_p = Communicator(env2, topo_p, names_p)
        events = [comm_p.allreduce(r, 100e6) for r in range(4)]
        env2.run(until=events[0])
        t_pcie = env2.now
        # NVLink: higher bandwidth AND lower transport penalty.
        assert t_nv < t_pcie / 3
