"""Focused tests for training-loop internals (staging, windows,
checkpoint placement, dataset caching)."""

import pytest

from repro import ComposableSystem
from repro.training import TrainingConfig, TrainingJob
from repro.training.loop import HOST_FRAMEWORK_BYTES, TrainingResult
from repro.workloads import get_benchmark


class TestCheckpointPlacement:
    def test_positions_deterministic(self):
        steps = TrainingJob._checkpoint_steps(24, 2)
        assert steps == frozenset({7, 15})

    def test_zero_checkpoints(self):
        assert TrainingJob._checkpoint_steps(24, 0) == frozenset()
        assert TrainingJob._checkpoint_steps(0, 3) == frozenset()

    def test_more_checkpoints_than_steps(self):
        steps = TrainingJob._checkpoint_steps(3, 10)
        assert steps <= {0, 1, 2}
        assert steps


class TestSteadyWindows:
    def make_result(self, spans, t0=0.0, t1=10.0):
        return TrainingResult(
            benchmark_key="x", strategy_name="ddp", policy_name="amp",
            world_size=8, global_batch=64, steps_simulated=4,
            step_time=0.1, step_time_std=0.0, checkpoint_time=1.0,
            staging_overhead=0.0, steps_per_epoch=10, epochs=1,
            checkpoints_per_epoch=1, t_start=t0, t_end=t1,
            collector=None, checkpoint_spans=spans)

    def test_no_checkpoints_whole_window(self):
        r = self.make_result([])
        assert r.steady_windows() == [(0.0, 10.0)]

    def test_single_span_splits(self):
        r = self.make_result([(4.0, 6.0)])
        assert r.steady_windows() == [(0.0, 4.0), (6.0, 10.0)]

    def test_span_at_end(self):
        r = self.make_result([(8.0, 10.0)])
        assert r.steady_windows() == [(0.0, 8.0)]

    def test_overlapping_spans_merged(self):
        r = self.make_result([(2.0, 5.0), (4.0, 7.0)])
        assert r.steady_windows() == [(0.0, 2.0), (7.0, 10.0)]

    def test_unordered_spans(self):
        r = self.make_result([(6.0, 7.0), (1.0, 2.0)])
        assert r.steady_windows() == [(0.0, 1.0), (2.0, 6.0),
                                      (7.0, 10.0)]


class TestDatasetCaching:
    def test_imagenet_fits_in_host_memory(self):
        system = ComposableSystem()
        config = TrainingConfig(benchmark=get_benchmark("resnet50"),
                                sim_steps=2)
        job = TrainingJob(system.env, system.topology, system.host,
                          system.host.gpus, system.host.scratch, config)
        assert job._dataset_cached

    def test_forced_uncached_reads_storage(self):
        system = ComposableSystem()
        before = system.host.scratch.bytes_read.total
        system.train("bert-base", sim_steps=4, dataset_cached=False)
        assert system.host.scratch.bytes_read.total > before

    def test_cached_skips_storage_reads(self):
        system = ComposableSystem()
        before = system.host.scratch.bytes_read.total
        system.train("bert-base", sim_steps=4, dataset_cached=True,
                     sim_checkpoints=0)
        assert system.host.scratch.bytes_read.total == before

    def test_uncached_run_reports_zero_staging(self):
        system = ComposableSystem()
        r = system.train("mobilenetv2", sim_steps=3,
                         dataset_cached=False, sim_checkpoints=0)
        # In-band reads: staging is already inside the measured steps.
        assert r.staging_overhead == 0.0


class TestStaging:
    def test_staging_time_uses_mosaic_factor(self):
        system = ComposableSystem()
        config = TrainingConfig(benchmark=get_benchmark("yolov5l"),
                                sim_steps=2)
        active = system.configure("localGPUs")
        job = TrainingJob(system.env, system.topology, system.host,
                          list(active.gpus), active.storage, config)
        dataset = get_benchmark("yolov5l").dataset
        expected = dataset.epoch_disk_bytes() * 4.0 \
            / system.host.scratch.spec.read_bandwidth
        assert job.staging_time() == pytest.approx(expected)

    def test_checkpoint_bytes_cover_training_state(self):
        system = ComposableSystem()
        config = TrainingConfig(benchmark=get_benchmark("bert-large"),
                                sim_steps=2)
        job = TrainingJob(system.env, system.topology, system.host,
                          system.host.gpus, system.host.scratch, config)
        # FP32 master + two moments: 12 bytes per parameter.
        assert job.checkpoint_bytes == pytest.approx(
            job.model.params * 12.0)


class TestHostMemoryAccounting:
    def test_host_memory_released_after_job(self):
        system = ComposableSystem()
        level_before = system.host.memory.level
        system.train("resnet50", sim_steps=3)
        assert system.host.memory.level == pytest.approx(level_before,
                                                         abs=1e6)

    def test_gpu_memory_released_after_job(self):
        system = ComposableSystem()
        system.train("resnet50", sim_steps=3)
        assert all(g.memory.level == pytest.approx(0.0)
                   for g in system.host.gpus)

    def test_framework_bytes_constant(self):
        assert HOST_FRAMEWORK_BYTES > 1e9
