"""GPipe-style PipelineParallel: pure plan compiler, generic executor.

The pipeline strategy exists only as a compiler — no executor changes —
so these tests are the acceptance check that a brand-new schedule runs
end-to-end through the unchanged plan executor, with its micro-batch
structure visible in the exported Chrome trace.
"""

import pytest

from repro.core import ComposableSystem
from repro.experiments import traced_run
from repro.plan import validate_plan
from repro.telemetry import to_chrome_trace, validate_chrome_trace
from repro.training import (
    AMP_POLICY,
    CompileContext,
    PipelineParallel,
    StepCosts,
    TrainingConfig,
    TrainingJob,
)
from repro.workloads import bert_large, get_benchmark

BERT = bert_large()
BENCH = get_benchmark("bert-large")


def compile_plan(microbatches=8, world=8, global_batch=48):
    system = ComposableSystem()
    gpus = list(system.configure("localGPUs").gpus)[:world]
    strategy = PipelineParallel(microbatches=microbatches)
    costs = StepCosts.for_benchmark(
        BERT, AMP_POLICY,
        BENCH.efficiency[AMP_POLICY.compute],
        strategy.rank_batch(global_batch, world))
    return strategy, strategy.compile_step(CompileContext(
        costs=costs, world_size=world, gpus=gpus))


class TestCompiler:
    def test_plan_validates(self):
        _, plan = compile_plan()
        assert validate_plan(plan) == []

    def test_gpipe_schedule_shape(self):
        strategy, plan = compile_plan(microbatches=4, world=4)
        # Every stage runs every micro-batch once in each direction.
        counts = plan.counts()
        # 4 stages x 4 mbs of forward+backward, plus 4 optimizers.
        assert counts["compute"] == 4 * 4 * 2 + 4
        # Activations go down 3 boundaries, gradients come back up.
        assert counts["p2p_copy"] == 2 * 3 * 4
        # One flush barrier per stage.
        assert counts["barrier"] == 4

    def test_stage_one_waits_for_stage_zero_send(self):
        _, plan = compile_plan(microbatches=4, world=4)
        fwd1 = plan.op("r1:forward-mb0")
        assert "r0:send-act-mb0" in fwd1.deps

    def test_only_rank_zero_is_fed(self):
        strategy = PipelineParallel()
        assert strategy.input_ranks(8) == (0,)
        # The full global batch enters the first stage.
        assert strategy.rank_batch(48, 8) == 48

    def test_batch_must_split_into_microbatches(self):
        strategy = PipelineParallel(microbatches=8)
        with pytest.raises(ValueError, match="microbatches"):
            strategy.rank_batch(42, 8)

    def test_memory_splits_state_across_stages(self):
        pipe = PipelineParallel()
        whole = pipe.memory_per_gpu(BERT, AMP_POLICY, 48, 1)
        staged = pipe.memory_per_gpu(BERT, AMP_POLICY, 48, 8)
        assert staged < whole


class TestEndToEnd:
    def test_runs_through_the_generic_executor(self):
        result = ComposableSystem().train(
            "bert-large", configuration="localGPUs",
            strategy=PipelineParallel(), global_batch=48, sim_steps=4)
        assert result.step_time > 0
        assert result.throughput > 0

    def test_schedule_is_visible_in_the_trace(self):
        run = traced_run("bert-large", "localGPUs", sim_steps=3,
                         strategy=PipelineParallel(), global_batch=48)
        names = {span.name for span in run.tracer.spans}
        for expected in (
                # Every micro-batch kernel emits under its own name...
                "forward-mb0", "forward-mb7", "backward-mb0",
                "backward-mb7", "pipeline-flush",
                # ...the final send is exclusive (nothing left to hide
                # it behind), the overlapped ones fold into the
                # mechanical exposed-sync remainder...
                "send-act-mb7", "exposed-sync",
                # ...and the fabric tracer shows every hand-off wire.
                "pipe-act", "pipe-grad"):
            assert expected in names, f"missing span {expected!r}"
        trace = to_chrome_trace(run.tracer)
        assert validate_chrome_trace(trace) == []
