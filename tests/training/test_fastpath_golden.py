"""Fast-path evaluation is bit-identical on every pinned Fig. 16 plan.

For each golden Fig. 16 (configuration, variant) case — with and without
the full optimizing pass pipeline — the fast-path engine and the
event-loop executor evaluate the same compiled step plan and every op's
start/end plus the makespan must agree at 1e-9 relative.  For the
strategies whose training step is exactly one plan replay (everything
but single-process DataParallel, whose in-training step overlaps the
master's broadcast with dataloader staging), the fast-path makespan is
additionally pinned to the golden *trained* step time.
"""

import json
from pathlib import Path

import pytest

from repro.core import ComposableSystem
from repro.experiments.software_opts import VARIANTS
from repro.plan import evaluate_plan
from repro.training import DataParallel, TrainingConfig, TrainingJob
from repro.workloads import get_benchmark

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_fig16.json").read_text())

CASES = [
    (config, variant, passes)
    for config in ("localGPUs", "falconGPUs")
    for variant in VARIANTS
    for passes in (None, "all")
    if f"{config}/{variant.name}" in GOLDEN["values"]
]


def build_job(config, variant, passes):
    system = ComposableSystem()
    active = system.configure(config)
    cfg = TrainingConfig(
        benchmark=get_benchmark(GOLDEN["benchmark"]),
        strategy=variant.strategy_factory(),
        policy=variant.policy,
        global_batch=variant.global_batch,
        plan_passes=passes,
    )
    return TrainingJob(system.env, system.topology, system.host,
                       list(active.gpus), active.storage, cfg)


@pytest.mark.parametrize(
    "config,variant,passes", CASES,
    ids=[f"{c}/{v.name}/{p or 'no-passes'}" for c, v, p in CASES])
def test_fastpath_matches_executor_on_golden_plans(config, variant,
                                                   passes):
    job = build_job(config, variant, passes)
    timing = evaluate_plan(job.step_plan, job._exec_ctx,
                           assert_equivalence=True)
    assert timing.mode == "fastpath"
    if passes is None and not isinstance(job.config.strategy,
                                         DataParallel):
        want = GOLDEN["values"][f"{config}/{variant.name}"]["step_time"]
        assert timing.makespan == pytest.approx(want, rel=1e-9)


def test_auto_mode_falls_back_on_stochastic_jitter():
    variant = next(v for v in VARIANTS if v.name == "DDP-FP16")
    system = ComposableSystem()
    active = system.configure("localGPUs")
    cfg = TrainingConfig(
        benchmark=get_benchmark(GOLDEN["benchmark"]),
        strategy=variant.strategy_factory(),
        policy=variant.policy,
        global_batch=variant.global_batch,
        kernel_jitter=0.05,
    )
    job = TrainingJob(system.env, system.topology, system.host,
                      list(active.gpus), active.storage, cfg)
    timing = evaluate_plan(job.step_plan, job._exec_ctx)
    assert timing.mode == "executor"
