"""Unit tests for parallel strategies (DP / DDP / sharded)."""

import pytest

from repro.devices import Precision, V100_SXM2_16GB
from repro.training import (
    AMP_POLICY,
    DataParallel,
    DistributedDataParallel,
    FP32_POLICY,
    ShardedDataParallel,
    StepCosts,
    activation_factor,
)
from repro.training.parallel import FRAMEWORK_OVERHEAD_BYTES
from repro.workloads import bert_large, get_benchmark, mobilenet_v2


class TestPrecisionPolicy:
    def test_amp_halves_gradient_bytes(self):
        model = bert_large()
        assert AMP_POLICY.gradient_bytes(model) == pytest.approx(
            FP32_POLICY.gradient_bytes(model) / 2)

    def test_amp_keeps_master_weights(self):
        model = bert_large()
        # FP16 weights + FP32 master = 6 bytes/param.
        assert AMP_POLICY.weight_bytes(model) == pytest.approx(
            model.params * 6.0)
        assert FP32_POLICY.weight_bytes(model) == pytest.approx(
            model.params * 4.0)

    def test_amp_has_step_overhead(self):
        assert AMP_POLICY.step_overhead > 0
        assert FP32_POLICY.step_overhead == 0


class TestStepCosts:
    def test_backward_is_2x_forward(self):
        b = get_benchmark("resnet50")
        costs = StepCosts.for_benchmark(b.build(), AMP_POLICY, 0.1, 16)
        assert costs.backward_flops == pytest.approx(2 * costs.forward_flops)

    def test_scales_with_batch(self):
        b = get_benchmark("resnet50")
        model = b.build()
        c1 = StepCosts.for_benchmark(model, AMP_POLICY, 0.1, 8)
        c2 = StepCosts.for_benchmark(model, AMP_POLICY, 0.1, 16)
        assert c2.forward_flops == pytest.approx(2 * c1.forward_flops)
        # Gradient bytes are batch-independent.
        assert c2.gradient_bytes == c1.gradient_bytes


class TestMemoryModel:
    def test_activation_factor_by_family(self):
        assert activation_factor(bert_large()) > \
            activation_factor(mobilenet_v2())

    def test_sharding_reduces_memory(self):
        model = bert_large()
        ddp = DistributedDataParallel()
        sharded = ShardedDataParallel()
        m_ddp = ddp.memory_per_gpu(model, AMP_POLICY, 6, 8)
        m_sh = sharded.memory_per_gpu(model, AMP_POLICY, 6, 8)
        assert m_sh < m_ddp
        # The saving is ~7/8 of optimizer state + gradients.
        expected_saving = (model.params * 12.0 + model.params * 2.0) * 7 / 8
        assert m_ddp - m_sh == pytest.approx(expected_saving, rel=1e-6)

    def test_bert_large_batch6_fits_ddp_but_7_does_not(self):
        """The lever behind Fig. 16: DDP caps BERT-large at 6/GPU."""
        model = bert_large()
        ddp = DistributedDataParallel()
        cap = V100_SXM2_16GB.memory_bytes
        assert ddp.max_batch_per_gpu(model, AMP_POLICY, cap, 8) == 6

    def test_sharded_lifts_bert_large_to_10(self):
        """Paper §V-C.4: sharded training lifts the batch from 6 to 10."""
        model = bert_large()
        sharded = ShardedDataParallel()
        cap = V100_SXM2_16GB.memory_bytes
        assert sharded.max_batch_per_gpu(model, AMP_POLICY, cap, 8) == 10

    def test_fp32_memory_larger_than_amp(self):
        model = bert_large()
        ddp = DistributedDataParallel()
        assert ddp.memory_per_gpu(model, FP32_POLICY, 6, 8) > \
            ddp.memory_per_gpu(model, AMP_POLICY, 6, 8)

    def test_zero_free_memory_gives_zero_batch(self):
        model = bert_large()
        ddp = DistributedDataParallel()
        assert ddp.max_batch_per_gpu(model, AMP_POLICY,
                                     FRAMEWORK_OVERHEAD_BYTES, 8) == 0

    def test_small_model_fits_large_batches(self):
        model = mobilenet_v2()
        ddp = DistributedDataParallel()
        cap = V100_SXM2_16GB.memory_bytes
        assert ddp.max_batch_per_gpu(model, AMP_POLICY, cap, 8) > 128


class TestBucketPlan:
    def test_bucket_count(self):
        ddp = DistributedDataParallel(bucket_bytes=25e6)
        b = get_benchmark("bert-large")
        costs = StepCosts.for_benchmark(b.build(), AMP_POLICY, 0.22, 6)
        plan = ddp._bucket_plan(costs, backward_time=1.0)
        assert len(plan) == 27  # 670 MB / 25 MB
        total = sum(nbytes for _, nbytes in plan)
        assert total == pytest.approx(costs.gradient_bytes)

    def test_ready_times_monotone_within_backward(self):
        ddp = DistributedDataParallel()
        b = get_benchmark("resnet50")
        costs = StepCosts.for_benchmark(b.build(), AMP_POLICY, 0.08, 16)
        plan = ddp._bucket_plan(costs, backward_time=2.0)
        times = [t for t, _ in plan]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(2.0)
        assert times[0] > 0

    def test_invalid_bucket_bytes(self):
        with pytest.raises(ValueError):
            DistributedDataParallel(bucket_bytes=0)


class TestStrategyNames:
    def test_names(self):
        assert DataParallel().name == "dp"
        assert DistributedDataParallel().name == "ddp"
        assert ShardedDataParallel().name == "sharded"
        assert ShardedDataParallel.sharded
        assert not DistributedDataParallel.sharded
