"""Unit and property tests for the layer cost primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.devices import Precision
from repro.workloads import (
    Layer,
    ModelGraph,
    batchnorm2d,
    conv2d,
    depthwise_conv2d,
    embedding,
    layernorm,
    linear,
    multihead_attention,
    pooling,
)


class TestConv2d:
    def test_params_and_flops(self):
        # 3x3 conv, 16->32 channels, 10x10 output.
        layer = conv2d("c", 16, 32, 3, (10, 10))
        assert layer.params == 3 * 3 * 16 * 32
        assert layer.forward_flops == 2 * layer.params * 100

    def test_bias(self):
        layer = conv2d("c", 16, 32, 1, (1, 1), bias=True)
        assert layer.params == 16 * 32 + 32

    def test_grouped(self):
        layer = conv2d("c", 16, 32, 3, (10, 10), groups=4)
        assert layer.params == 3 * 3 * 4 * 32

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            conv2d("c", 15, 32, 3, (10, 10), groups=4)

    def test_depthwise(self):
        layer = depthwise_conv2d("dw", 32, 3, (10, 10))
        assert layer.params == 3 * 3 * 32

    def test_activation_bytes(self):
        layer = conv2d("c", 3, 8, 3, (5, 5))
        assert layer.activation_bytes == 8 * 25 * 4


class TestLinear:
    def test_params(self):
        layer = linear("fc", 100, 10)
        assert layer.params == 1010

    def test_tokens_scale_flops_not_params(self):
        l1 = linear("fc", 64, 64, tokens=1)
        l2 = linear("fc", 64, 64, tokens=10)
        assert l1.params == l2.params
        assert l2.forward_flops == 10 * l1.forward_flops


class TestAttention:
    def test_params_are_four_projections(self):
        layer = multihead_attention("attn", 768, 12, 384)
        assert layer.params == 4 * (768 * 768 + 768)

    def test_quadratic_token_scaling(self):
        short = multihead_attention("a", 768, 12, 128)
        long = multihead_attention("a", 768, 12, 256)
        # Attention-score FLOPs grow ~4x when tokens double.
        proj = 2 * 4 * 768 * 768
        score_short = short.forward_flops - proj * 128
        score_long = long.forward_flops - proj * 256
        assert score_long == pytest.approx(4 * score_short)

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            multihead_attention("a", 100, 7, 10)


class TestMiscLayers:
    def test_batchnorm_not_weighted(self):
        assert not batchnorm2d("bn", 64, (10, 10)).weighted

    def test_layernorm_params(self):
        assert layernorm("ln", 768).params == 1536

    def test_embedding_no_flops(self):
        layer = embedding("emb", 30522, 768, tokens=384)
        assert layer.forward_flops == 0.0
        assert layer.params == 30522 * 768

    def test_pooling_no_params(self):
        assert pooling("p", 64, (7, 7)).params == 0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            Layer("bad", -1, 0.0, 0.0)


class TestModelGraph:
    def make_graph(self):
        g = ModelGraph("toy")
        g.add(conv2d("c1", 3, 8, 3, (10, 10)))
        g.add(batchnorm2d("bn", 8, (10, 10)))
        g.add(linear("fc", 800, 10))
        return g

    def test_aggregates(self):
        g = self.make_graph()
        assert g.params == (3 * 3 * 3 * 8) + 16 + 8010
        assert g.depth == 2  # conv + linear (bn unweighted)
        assert len(g) == 3

    def test_train_flops_is_3x_forward(self):
        g = self.make_graph()
        assert g.train_flops_per_sample == pytest.approx(
            3 * g.forward_flops_per_sample)

    def test_precision_halves_bytes(self):
        g = self.make_graph()
        assert g.weight_bytes(Precision.FP16) == pytest.approx(
            g.weight_bytes(Precision.FP32) / 2)
        assert g.gradient_bytes(Precision.FP16) == pytest.approx(
            g.params * 2)
        assert g.activation_bytes_per_sample(Precision.FP16) == \
            pytest.approx(g.activation_bytes_per_sample(Precision.FP32) / 2)

    def test_optimizer_state_sharding(self):
        g = self.make_graph()
        full = g.optimizer_state_bytes()
        assert full == g.params * 12
        assert g.optimizer_state_bytes(sharded=True, world_size=8) == \
            pytest.approx(full / 8)
        assert g.optimizer_state_bytes(sharded=True, world_size=1) == full

    def test_summary_keys(self):
        s = self.make_graph().summary()
        assert {"name", "params", "depth", "layers",
                "forward_gflops_per_sample"} <= set(s)

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=64))
    def test_property_conv_params_positive_monotone(self, cin, cout):
        small = conv2d("c", cin, cout, 1, (4, 4))
        big = conv2d("c", cin, cout, 3, (4, 4))
        assert 0 < small.params < big.params
