"""Tests that the architecture builders reproduce Table II."""

import pytest

from repro.devices import Precision
from repro.workloads import (
    BENCHMARKS,
    bert,
    bert_base,
    bert_large,
    benchmark_names,
    get_benchmark,
    mobilenet_v2,
    resnet50,
    yolov5l,
)


class TestTable2ParameterCounts:
    """Paper Table II: parameters of the evaluated benchmarks."""

    def test_mobilenetv2_params(self):
        assert mobilenet_v2().params / 1e6 == pytest.approx(3.4, rel=0.05)

    def test_resnet50_params(self):
        assert resnet50().params / 1e6 == pytest.approx(25.6, rel=0.01)

    def test_yolov5l_params(self):
        assert yolov5l().params / 1e6 == pytest.approx(47.0, rel=0.03)

    def test_bert_base_params(self):
        assert bert_base().params / 1e6 == pytest.approx(110.0, rel=0.02)

    def test_bert_large_params(self):
        assert bert_large().params / 1e6 == pytest.approx(340.0, rel=0.02)


class TestDepths:
    def test_resnet50_depth_is_50(self):
        assert resnet50().depth == 50

    def test_mobilenetv2_depth_is_53(self):
        assert mobilenet_v2().depth == 53

    def test_bert_encoder_blocks(self):
        # Table II depth convention for BERT: encoder blocks.
        base = bert_base()
        attn_layers = [l for l in base.layers if "attention" in l.name
                       and l.weighted]
        assert len(attn_layers) == 12
        large = bert_large()
        attn_layers = [l for l in large.layers if "attention" in l.name
                       and l.weighted]
        assert len(attn_layers) == 24


class TestFlops:
    def test_resnet50_forward_flops(self):
        # ~4.1 GMAC = ~8.2 GFLOP at 224px (2xMAC convention, incl. BN etc).
        g = resnet50()
        assert g.forward_flops_per_sample / 1e9 == pytest.approx(8.2,
                                                                 rel=0.10)

    def test_mobilenetv2_forward_flops(self):
        # ~0.3 GMAC = ~0.6 GFLOP at 224px.
        g = mobilenet_v2()
        assert g.forward_flops_per_sample / 1e9 == pytest.approx(0.6,
                                                                 rel=0.15)

    def test_yolov5l_forward_flops(self):
        # Ultralytics reports 109.1 GFLOPs at 640px.
        g = yolov5l()
        assert g.forward_flops_per_sample / 1e9 == pytest.approx(109.1,
                                                                 rel=0.05)

    def test_bert_flops_scale_with_seq_len(self):
        short = bert("b", 768, 12, 12, seq_len=128)
        long = bert("b", 768, 12, 12, seq_len=384)
        assert long.forward_flops_per_sample > \
            3 * short.forward_flops_per_sample  # superlinear (attention)

    def test_ordering_matches_model_size(self):
        flops = {k: get_benchmark(k).build().train_flops_per_sample
                 for k in benchmark_names()}
        assert flops["mobilenetv2"] < flops["resnet50"] < flops["yolov5l"]
        assert flops["bert-base"] < flops["bert-large"]


class TestMemoryFootprints:
    def test_bert_large_weights_dont_fit_many_replicas(self):
        g = bert_large()
        # FP32 weights + optimizer state ~= 16 bytes/param ~ 5.4 GB.
        total = g.weight_bytes(Precision.FP32) + g.optimizer_state_bytes()
        assert total / 1e9 == pytest.approx(5.4, rel=0.1)

    def test_activation_bytes_positive(self):
        for key in benchmark_names():
            g = get_benchmark(key).build()
            assert g.activation_bytes_per_sample() > 0

    def test_hbm_bytes_exceed_weights(self):
        g = resnet50()
        assert g.hbm_bytes_per_sample() > g.weight_bytes()


class TestBertValidation:
    def test_seq_len_bounds(self):
        with pytest.raises(ValueError):
            bert("b", 768, 12, 12, seq_len=0)
        with pytest.raises(ValueError):
            bert("b", 768, 12, 12, seq_len=513)

    def test_qa_head_optional(self):
        with_head = bert("b", 768, 2, 12, qa_head=True)
        without = bert("b", 768, 2, 12, qa_head=False)
        assert with_head.params == without.params + (768 * 2 + 2)


class TestRegistry:
    def test_all_five_benchmarks_present(self):
        assert benchmark_names() == [
            "mobilenetv2", "resnet50", "yolov5l", "bert-base", "bert-large"]
        assert set(benchmark_names()) == set(BENCHMARKS)

    def test_unknown_key_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_benchmark("alexnet")

    def test_paper_run_parameters(self):
        # Paper §V-C.1: epochs and batch sizes per benchmark.
        assert get_benchmark("yolov5l").global_batch == 88
        assert get_benchmark("yolov5l").epochs == 20
        assert get_benchmark("resnet50").paper_batch_size == 128
        assert get_benchmark("resnet50").global_batch == 128 * 8
        assert get_benchmark("mobilenetv2").paper_batch_size == 64
        assert get_benchmark("mobilenetv2").epochs == 10
        assert get_benchmark("bert-base").global_batch == 96
        assert get_benchmark("bert-large").global_batch == 48
        assert get_benchmark("bert-large").seq_len == 384

    def test_yolo_mosaic_disk_factor(self):
        assert get_benchmark("yolov5l").disk_read_factor == 4.0
        assert get_benchmark("resnet50").disk_read_factor == 1.0

    def test_steps_per_epoch(self):
        b = get_benchmark("resnet50")
        assert b.steps_per_epoch == b.dataset.num_samples // b.global_batch

    def test_efficiency_tables_complete(self):
        for key in benchmark_names():
            b = get_benchmark(key)
            assert Precision.FP16 in b.efficiency
            assert Precision.FP32 in b.efficiency
            assert 0 < b.efficiency[Precision.FP16] <= 1
            # FP32 efficiency (vs the much lower FP32 peak) is higher.
            assert b.efficiency[Precision.FP32] > b.efficiency[Precision.FP16]

    def test_dataset_validation(self):
        from repro.workloads import DatasetSpec
        with pytest.raises(ValueError):
            DatasetSpec("bad", "x", 0, 1, 1, 1)
        with pytest.raises(ValueError):
            DatasetSpec("bad", "x", 10, -1, 1, 1)

    def test_steps_per_epoch_validation(self):
        from repro.workloads import IMAGENET
        with pytest.raises(ValueError):
            IMAGENET.steps_per_epoch(0)
        assert IMAGENET.steps_per_epoch(10 ** 9) == 1
