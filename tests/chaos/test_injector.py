"""FaultInjector: target resolution, fabric effects, deterministic replay."""

import pytest

from repro.chaos import FaultEvent, FaultInjector, FaultScenario, InjectionError
from repro.core import ComposableSystem


def make_injector(system):
    return FaultInjector(system.env, system.topology,
                         falcon=system.falcon,
                         event_log=system.mcs.log,
                         bmc=system.mcs.bmcs[system.falcon.name])


@pytest.fixture()
def system():
    return ComposableSystem()


class TestTargetResolution:
    def test_port_target_resolves_to_cable(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "pull_cable", "port:H1"))
        # Drawer-0 GPUs lost their uplink; drawer-1 GPUs kept theirs.
        assert not system.topology.reachable(system.host.dram_node,
                                             "falcon0/gpu0")
        assert system.topology.reachable(system.host.dram_node,
                                         "falcon0/gpu4")

    def test_unknown_port_rejected(self, system):
        inj = make_injector(system)
        with pytest.raises(InjectionError):
            inj.apply(FaultEvent(0.0, "pull_cable", "port:H9"))

    def test_port_target_needs_falcon(self, system):
        inj = FaultInjector(system.env, system.topology)
        with pytest.raises(InjectionError):
            inj.apply(FaultEvent(0.0, "pull_cable", "port:H1"))

    def test_unknown_node_rejected(self, system):
        inj = make_injector(system)
        with pytest.raises(InjectionError):
            inj.apply(FaultEvent(0.0, "gpu_drop", "node:falcon0/gpu99"))

    def test_unknown_target_kind_rejected(self, system):
        inj = make_injector(system)
        with pytest.raises(InjectionError):
            inj.apply(FaultEvent(0.0, "pull_cable", "rack:R1"))


class TestFabricEffects:
    def test_pull_and_reseat_cycle(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "pull_cable", "port:H1"))
        assert system.topology.failed_links()
        inj.apply(FaultEvent(0.0, "reseat_cable", "port:H1"))
        assert not system.topology.failed_links()
        assert system.topology.reachable(system.host.dram_node,
                                         "falcon0/gpu0")

    def test_degrade_then_restore(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "degrade_link", "port:H1",
                             {"lanes": 4}))
        link = inj._port_link("H1")
        assert link.spec.bandwidth < link.original_spec.bandwidth
        inj.apply(FaultEvent(0.0, "restore_link", "port:H1"))
        assert link.spec.bandwidth == link.original_spec.bandwidth

    def test_gpu_drop_isolates_device(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "gpu_drop", "node:falcon0/gpu2"))
        assert not system.topology.reachable(system.host.dram_node,
                                             "falcon0/gpu2")
        # Neighbours on the same drawer stay reachable.
        assert system.topology.reachable(system.host.dram_node,
                                         "falcon0/gpu3")

    def test_port_flap_self_heals(self, system):
        inj = make_injector(system)
        inj.start(FaultScenario("flap", [
            FaultEvent(1.0, "port_flap", "port:H2", {"down": 0.5})]))
        system.env.run(until=system.env.timeout(2.0))
        assert system.topology.reachable(system.host.dram_node,
                                         "falcon0/gpu4")
        actions = [t[1] for t in inj.trace]
        assert actions == ["port_flap", "restore_link"]

    def test_double_pull_is_idempotent(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "pull_cable", "port:H1"))
        inj.apply(FaultEvent(0.0, "pull_cable", "port:H1"))
        inj.apply(FaultEvent(0.0, "degrade_link", "port:H1",
                             {"lanes": 4}))  # can't retrain a pulled cable
        inj.apply(FaultEvent(0.0, "reseat_cable", "port:H1"))
        assert system.topology.reachable(system.host.dram_node,
                                         "falcon0/gpu0")

    def test_repeat_gpu_drop_after_isolation(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "gpu_drop", "node:falcon0/gpu2"))
        inj.apply(FaultEvent(0.0, "gpu_drop", "node:falcon0/gpu2"))
        assert len(inj.trace) == 2

    def test_bmc_sees_injected_faults(self, system):
        inj = make_injector(system)
        bmc = system.mcs.bmcs["falcon0"]
        inj.apply(FaultEvent(0.0, "degrade_link", "port:H1",
                             {"lanes": 4}))
        inj.apply(FaultEvent(0.0, "pull_cable", "port:H2"))
        h1 = inj._port_link("H1").name
        h2 = inj._port_link("H2").name
        assert bmc.links[h1].correctable_errors == 1
        assert bmc.links[h2].uncorrectable_errors == 1

    def test_faults_land_in_event_log(self, system):
        inj = make_injector(system)
        inj.apply(FaultEvent(0.0, "pull_cable", "port:H1"))
        records = system.mcs.log.query(kind="fault_injected")
        assert len(records) == 1
        assert records[0].actor == "chaos"
        assert records[0].details["target"] == "port:H1"


class TestDeterministicReplay:
    def test_same_seed_identical_trace(self):
        scenario = FaultScenario.random(
            1234, 5.0, ["port:H1", "port:H2", "node:falcon0/gpu5"],
            count=4)
        traces = []
        for _ in range(2):
            system = ComposableSystem()
            inj = make_injector(system)
            inj.start(scenario)
            system.env.run(until=system.env.timeout(10.0))
            traces.append(list(inj.trace))
        assert traces[0] == traces[1]
        assert len(traces[0]) >= 4

    def test_trace_order_matches_schedule(self, system):
        scenario = FaultScenario("ordered", [
            FaultEvent(2.0, "reseat_cable", "port:H1"),
            FaultEvent(1.0, "pull_cable", "port:H1"),
        ])
        inj = make_injector(system)
        inj.start(scenario)
        system.env.run(until=system.env.timeout(3.0))
        assert [(t, a) for t, a, _ in inj.trace] == [
            (1.0, "pull_cable"), (2.0, "reseat_cable")]
