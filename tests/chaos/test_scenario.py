"""Scenario format: validation, serialization, seeded determinism."""

import pytest

from repro.chaos import FaultEvent, FaultScenario, ScenarioError


class TestFaultEventValidation:
    def test_valid_event(self):
        e = FaultEvent(1.0, "pull_cable", "port:H1")
        assert e.at == 1.0
        assert e.params == {}

    def test_negative_time_rejected(self):
        with pytest.raises(ScenarioError):
            FaultEvent(-0.1, "pull_cable", "port:H1")

    def test_unknown_action_rejected(self):
        with pytest.raises(ScenarioError):
            FaultEvent(1.0, "set_on_fire", "port:H1")

    def test_bare_target_rejected(self):
        with pytest.raises(ScenarioError):
            FaultEvent(1.0, "pull_cable", "H1")

    def test_from_dict_missing_field(self):
        with pytest.raises(ScenarioError):
            FaultEvent.from_dict({"at": 1.0, "action": "pull_cable"})


class TestScenario:
    def test_events_sorted_by_time(self):
        s = FaultScenario("s", [
            FaultEvent(5.0, "restore_link", "port:H1"),
            FaultEvent(1.0, "pull_cable", "port:H1"),
        ])
        assert [e.at for e in s] == [1.0, 5.0]
        assert s.duration == 5.0
        assert len(s) == 2

    def test_empty_scenario_duration(self):
        assert FaultScenario("empty", []).duration == 0.0

    def test_shifted(self):
        s = FaultScenario("s", [FaultEvent(1.0, "pull_cable", "port:H1")])
        moved = s.shifted(2.5)
        assert [e.at for e in moved] == [3.5]
        assert moved.name == s.name

    def test_round_trip_through_dict(self):
        s = FaultScenario("rt", [
            FaultEvent(1.0, "degrade_link", "port:H1", {"lanes": 4}),
            FaultEvent(2.0, "gpu_drop", "node:falcon0/gpu3"),
        ], seed=7)
        back = FaultScenario.from_dict(s.to_dict())
        assert back.name == "rt"
        assert back.seed == 7
        assert [e.to_dict() for e in back] == [e.to_dict() for e in s]

    def test_from_dict_missing_name(self):
        with pytest.raises(ScenarioError):
            FaultScenario.from_dict({"events": []})


class TestRandomScenarios:
    def test_same_seed_same_events(self):
        a = FaultScenario.random(42, 10.0, ["port:H1", "port:H2"])
        b = FaultScenario.random(42, 10.0, ["port:H1", "port:H2"])
        assert [e.to_dict() for e in a] == [e.to_dict() for e in b]

    def test_different_seed_different_events(self):
        a = FaultScenario.random(1, 10.0, ["port:H1", "port:H2"], count=5)
        b = FaultScenario.random(2, 10.0, ["port:H1", "port:H2"], count=5)
        assert [e.to_dict() for e in a] != [e.to_dict() for e in b]

    def test_every_pull_is_healed(self):
        s = FaultScenario.random(3, 10.0, ["port:H1"], count=8,
                                 actions=("pull_cable",))
        pulls = [e for e in s if e.action == "pull_cable"]
        heals = [e for e in s if e.action == "reseat_cable"]
        assert len(pulls) == 8
        assert len(heals) == 8
        for pull in pulls:
            assert any(h.at > pull.at and h.target == pull.target
                       for h in heals)

    def test_times_within_window(self):
        s = FaultScenario.random(4, 100.0, ["port:H1"], count=10)
        for e in s:
            assert 0.0 < e.at < 110.0  # heal events may run past 90%

    def test_validation(self):
        with pytest.raises(ScenarioError):
            FaultScenario.random(1, 10.0, [])
        with pytest.raises(ScenarioError):
            FaultScenario.random(1, -1.0, ["port:H1"])
        with pytest.raises(ScenarioError):
            FaultScenario.random(1, 10.0, ["port:H1"],
                                 actions=("set_on_fire",))
