"""Tests for the dual-connection partitioned drawer (paper §III-B)."""

import pytest

from repro.fabric import (
    Falcon4016,
    FalconError,
    GB,
    Topology,
)
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


@pytest.fixture()
def falcon(topo):
    return Falcon4016(topo, "f", partitioned_drawers=frozenset({0}))


def add_host(topo, name="host0"):
    topo.add_node(f"{name}/rc", kind="rc", transit=True)
    return f"{name}/rc"


def install_gpus(topo, falcon, count=8, drawer=0):
    names = []
    for i in range(count):
        name = f"g{i}"
        topo.add_node(name, kind="gpu")
        falcon.install_device(name, drawer=drawer, slot=i)
        names.append(name)
    return names


class TestStructure:
    def test_partitioned_drawer_has_two_switches(self, falcon):
        assert falcon.drawers[0].partitions == 2
        assert len(falcon.drawers[0].switches) == 2
        assert falcon.drawers[1].partitions == 1

    def test_slot_partition_mapping(self, falcon):
        drawer = falcon.drawers[0]
        assert drawer.partition_of_slot(0) == 0
        assert drawer.partition_of_slot(3) == 0
        assert drawer.partition_of_slot(4) == 1
        assert drawer.partition_of_slot(7) == 1

    def test_invalid_partition_count(self, topo):
        from repro.fabric.falcon import Drawer
        with pytest.raises(FalconError):
            Drawer(topo, "x", 0, partitions=3)

    def test_devices_attach_to_their_partition_switch(self, topo, falcon):
        install_gpus(topo, falcon)
        assert topo.route("g0", "f/drawer0/switch0").hops == 1
        assert topo.route("g4", "f/drawer0/switch1").hops == 1


class TestDualConnection:
    def test_same_host_connects_twice(self, topo, falcon):
        rc = add_host(topo)
        falcon.connect_host("H1", "host0", rc, drawer=0, partition=0)
        falcon.connect_host("H2", "host0", rc, drawer=0, partition=1)
        assert falcon.drawers[0].connection_count == 2
        assert falcon.hosts_of_drawer(0) == ["host0"]

    def test_partition_port_is_exclusive(self, topo, falcon):
        rc = add_host(topo)
        falcon.connect_host("H1", "host0", rc, drawer=0, partition=0)
        rc1 = add_host(topo, "host1")
        with pytest.raises(FalconError, match="partition 0"):
            falcon.connect_host("H2", "host1", rc1, drawer=0, partition=0)

    def test_unknown_partition_rejected(self, topo, falcon):
        rc = add_host(topo)
        with pytest.raises(FalconError, match="no partition"):
            falcon.connect_host("H1", "host0", rc, drawer=0, partition=2)
        with pytest.raises(FalconError):
            falcon.connect_host("H1", "host0", rc, drawer=1, partition=1)

    def test_cross_partition_traffic_routes_through_host(self, env, topo,
                                                         falcon):
        rc = add_host(topo)
        falcon.connect_host("H1", "host0", rc, drawer=0, partition=0)
        falcon.connect_host("H2", "host0", rc, drawer=0, partition=1)
        install_gpus(topo, falcon)
        route = topo.route("g0", "g4")
        assert rc in route.nodes          # via the root complex
        same_half = topo.route("g0", "g1")
        assert rc not in same_half.nodes  # stays inside the partition

    def test_disconnect_one_port_keeps_other(self, topo, falcon):
        rc = add_host(topo)
        falcon.connect_host("H1", "host0", rc, drawer=0, partition=0)
        falcon.connect_host("H2", "host0", rc, drawer=0, partition=1)
        install_gpus(topo, falcon, count=1)
        falcon.allocate("g0", "host0")
        falcon.disconnect_host("H2")
        # Host still connected via H1: allocation survives.
        assert falcon.owner_of("g0") == "host0"
        falcon.disconnect_host("H1")
        assert falcon.owner_of("g0") is None

    def test_doubled_host_device_bandwidth(self, env, topo, falcon):
        """The paper's claim: dual connections improve host-device
        throughput (one uplink per 4-GPU half instead of one per 8)."""
        rc = add_host(topo)
        falcon.connect_host("H1", "host0", rc, drawer=0, partition=0)
        falcon.connect_host("H2", "host0", rc, drawer=0, partition=1)
        install_gpus(topo, falcon)
        finished = []

        def push(gpu):
            yield topo.transfer(rc, gpu, 9.85 * GB)
            finished.append(env.now)

        # One transfer per half: each uses its own CDFP uplink -> ~1 s.
        env.process(push("g0"))
        env.process(push("g4"))
        env.run()
        assert max(finished) == pytest.approx(1.0, rel=0.02)

        # Same experiment on the single-uplink drawer 1 -> ~2 s.
        env2 = Environment()
        topo2 = Topology(env2)
        falcon2 = Falcon4016(topo2, "f")
        rc2 = add_host(topo2)
        falcon2.connect_host("H1", "host0", rc2, drawer=0)
        for i in range(8):
            topo2.add_node(f"g{i}", kind="gpu")
            falcon2.install_device(f"g{i}", drawer=0, slot=i)
        done2 = []

        def push2(gpu):
            yield topo2.transfer(rc2, gpu, 9.85 * GB)
            done2.append(env2.now)

        env2.process(push2("g0"))
        env2.process(push2("g4"))
        env2.run()
        assert max(done2) == pytest.approx(2.0, rel=0.02)
