"""Unit tests for the Falcon 4016 chassis model."""

import pytest

from repro.fabric import (
    Falcon4016,
    FalconError,
    FalconMode,
    GB,
    Topology,
)
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


@pytest.fixture()
def falcon(topo):
    return Falcon4016(topo, "falcon0")


def add_host(topo, name):
    topo.add_node(f"{name}/rc", kind="rc", transit=True)
    return f"{name}/rc"


def add_device(topo, name):
    topo.add_node(name, kind="gpu")
    return name


class TestChassisStructure:
    def test_two_drawers_eight_slots(self, falcon):
        assert len(falcon.drawers) == 2
        assert all(len(d.slots) == 8 for d in falcon.drawers)

    def test_default_mode_standard(self, falcon):
        assert falcon.mode is FalconMode.STANDARD
        assert falcon.max_hosts_per_drawer == 2


class TestHostConnections:
    def test_connect_host(self, topo, falcon):
        rc = add_host(topo, "host0")
        link = falcon.connect_host("H1", "host0", rc, drawer=0)
        assert falcon.port_map["H1"] == ("host0", 0)
        assert falcon.hosts_of_drawer(0) == ["host0"]
        assert link.other(falcon.drawers[0].switch.name) == rc

    def test_unknown_port_rejected(self, topo, falcon):
        rc = add_host(topo, "host0")
        with pytest.raises(FalconError):
            falcon.connect_host("H9", "host0", rc, drawer=0)

    def test_port_reuse_rejected(self, topo, falcon):
        rc0 = add_host(topo, "host0")
        rc1 = add_host(topo, "host1")
        falcon.connect_host("H1", "host0", rc0, drawer=0)
        with pytest.raises(FalconError):
            falcon.connect_host("H1", "host1", rc1, drawer=0)

    def test_standard_mode_two_hosts_max(self, topo, falcon):
        for i in range(2):
            falcon.connect_host(f"H{i+1}", f"host{i}",
                                add_host(topo, f"host{i}"), drawer=0)
        with pytest.raises(FalconError):
            falcon.connect_host("H3", "host2", add_host(topo, "host2"),
                                drawer=0)

    def test_advanced_mode_three_hosts(self, topo):
        falcon = Falcon4016(topo, "f", mode=FalconMode.ADVANCED)
        for i in range(3):
            falcon.connect_host(f"H{i+1}", f"host{i}",
                                add_host(topo, f"host{i}"), drawer=0)
        assert len(falcon.hosts_of_drawer(0)) == 3

    def test_disconnect_releases_allocations(self, topo, falcon):
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        dev = add_device(topo, "gpuA")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        falcon.disconnect_host("H1")
        assert falcon.owner_of(dev) is None
        assert "H1" not in falcon.port_map


class TestDeviceLifecycle:
    def test_install_auto_slot(self, topo, falcon):
        dev = add_device(topo, "gpuA")
        slot = falcon.install_device(dev, drawer=0)
        assert slot.device == dev
        assert falcon.installed_devices() == [dev]

    def test_install_specific_slot(self, topo, falcon):
        dev = add_device(topo, "gpuA")
        slot = falcon.install_device(dev, drawer=1, slot=5)
        assert slot.label == "drawer1/slot5"

    def test_occupied_slot_rejected(self, topo, falcon):
        falcon.install_device(add_device(topo, "a"), drawer=0, slot=0)
        with pytest.raises(FalconError):
            falcon.install_device(add_device(topo, "b"), drawer=0, slot=0)

    def test_double_install_rejected(self, topo, falcon):
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        with pytest.raises(FalconError):
            falcon.install_device(dev, drawer=1)

    def test_drawer_full(self, topo, falcon):
        for i in range(8):
            falcon.install_device(add_device(topo, f"d{i}"), drawer=0)
        with pytest.raises(FalconError):
            falcon.install_device(add_device(topo, "extra"), drawer=0)

    def test_remove_device(self, topo, falcon):
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        falcon.remove_device(dev)
        assert falcon.installed_devices() == []

    def test_remove_allocated_rejected(self, topo, falcon):
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        with pytest.raises(FalconError):
            falcon.remove_device(dev)

    def test_bad_slot_index(self, topo, falcon):
        with pytest.raises(FalconError):
            falcon.install_device(add_device(topo, "a"), drawer=0, slot=8)

    def test_bad_drawer_index(self, topo, falcon):
        with pytest.raises(FalconError):
            falcon.install_device(add_device(topo, "a"), drawer=2)


class TestAllocation:
    def test_allocate_and_route(self, env, topo, falcon):
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        dev = add_device(topo, "gpuA")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        assert falcon.owner_of(dev) == "host0"
        # Data can now flow host rc -> drawer switch -> device.
        route = topo.route(rc, dev)
        assert route.hops == 2

    def test_allocate_unconnected_host_rejected(self, topo, falcon):
        dev = add_device(topo, "gpuA")
        falcon.install_device(dev, drawer=0)
        with pytest.raises(FalconError):
            falcon.allocate(dev, "ghost")

    def test_double_allocation_rejected(self, topo, falcon):
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        dev = add_device(topo, "gpuA")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        with pytest.raises(FalconError):
            falcon.allocate(dev, "host0")

    def test_standard_two_host_split_four_four(self, topo, falcon):
        for i in range(2):
            falcon.connect_host(f"H{i+1}", f"host{i}",
                                add_host(topo, f"host{i}"), drawer=0)
        devices = [add_device(topo, f"d{i}") for i in range(8)]
        for d in devices:
            falcon.install_device(d, drawer=0)
        for d in devices[:4]:
            falcon.allocate(d, "host0")
        with pytest.raises(FalconError):
            falcon.allocate(devices[4], "host0")
        for d in devices[4:]:
            falcon.allocate(d, "host1")
        assert len(falcon.devices_of("host1")) == 4

    def test_standard_one_host_gets_all_eight(self, topo, falcon):
        falcon.connect_host("H1", "host0", add_host(topo, "host0"), drawer=0)
        for i in range(8):
            d = add_device(topo, f"d{i}")
            falcon.install_device(d, drawer=0)
            falcon.allocate(d, "host0")
        assert len(falcon.devices_of("host0")) == 8

    def test_deallocate(self, topo, falcon):
        falcon.connect_host("H1", "host0", add_host(topo, "host0"), drawer=0)
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        falcon.deallocate(dev)
        assert falcon.owner_of(dev) is None

    def test_deallocate_unallocated_rejected(self, topo, falcon):
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        with pytest.raises(FalconError):
            falcon.deallocate(dev)

    def test_reallocate_requires_advanced(self, topo, falcon):
        falcon.connect_host("H1", "host0", add_host(topo, "host0"), drawer=0)
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        with pytest.raises(FalconError):
            falcon.reallocate(dev, "host0")

    def test_reallocate_advanced_moves_device(self, topo):
        falcon = Falcon4016(topo, "f", mode=FalconMode.ADVANCED)
        falcon.connect_host("H1", "host0", add_host(topo, "host0"), drawer=0)
        falcon.connect_host("H2", "host1", add_host(topo, "host1"), drawer=0)
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        falcon.reallocate(dev, "host1")
        assert falcon.owner_of(dev) == "host1"


class TestModes:
    def test_mode_switch_validation(self, topo):
        falcon = Falcon4016(topo, "f", mode=FalconMode.ADVANCED)
        for i in range(3):
            falcon.connect_host(f"H{i+1}", f"host{i}",
                                add_host(topo, f"host{i}"), drawer=0)
        with pytest.raises(FalconError):
            falcon.set_mode(FalconMode.STANDARD)

    def test_mode_switch_ok_when_compatible(self, topo, falcon):
        falcon.set_mode(FalconMode.ADVANCED)
        assert falcon.max_hosts_per_drawer == 3
        falcon.set_mode(FalconMode.STANDARD)
        assert falcon.max_hosts_per_drawer == 2


class TestTrafficAndConfig:
    def test_device_traffic_counters(self, env, topo, falcon):
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        dev = add_device(topo, "gpuA")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")

        def push():
            yield topo.transfer(rc, dev, 10 * GB)

        env.process(push())
        env.run()
        t1 = env.now
        ingress, egress = falcon.device_traffic(dev, 0.0, t1)
        assert ingress > 0
        assert egress == 0.0
        p_in, p_out = falcon.port_traffic("H1", 0.0, t1)
        assert p_in > 0

    def test_export_import_roundtrip(self, topo, falcon):
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        devices = [add_device(topo, f"d{i}") for i in range(3)]
        for d in devices:
            falcon.install_device(d, drawer=0)
            falcon.allocate(d, "host0")
        config = falcon.export_config()
        for d in devices:
            falcon.deallocate(d)
        falcon.apply_allocations(config)
        assert all(falcon.owner_of(d) == "host0" for d in devices)

    def test_import_mode_mismatch_rejected(self, topo, falcon):
        config = falcon.export_config()
        config["mode"] = "advanced"
        with pytest.raises(FalconError):
            falcon.apply_allocations(config)

    def test_import_device_mismatch_rejected(self, topo, falcon):
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0, slot=0)
        config = falcon.export_config()
        config["slots"][0]["device"] = "other"
        with pytest.raises(FalconError):
            falcon.apply_allocations(config)

    def test_events_emitted(self, topo):
        events = []
        falcon = Falcon4016(topo, "f",
                            on_event=lambda kind, d: events.append(kind))
        rc = add_host(topo, "host0")
        falcon.connect_host("H1", "host0", rc, drawer=0)
        dev = add_device(topo, "a")
        falcon.install_device(dev, drawer=0)
        falcon.allocate(dev, "host0")
        falcon.deallocate(dev)
        falcon.remove_device(dev)
        falcon.disconnect_host("H1")
        assert events == [
            "host_connected", "device_installed", "device_allocated",
            "device_deallocated", "device_removed", "host_disconnected",
        ]


class TestFabricHostConnections:
    """Leaf/spine admission: connect_fabric_host shares drawer trunks."""

    @pytest.fixture()
    def spine(self, topo):
        topo.add_node("spine0", kind="switch", transit=True)
        return "spine0"

    def test_first_admission_cables_one_trunk(self, falcon, spine):
        link = falcon.connect_fabric_host("H1", "hostA", spine, drawer=0)
        switch = falcon.drawers[0].switches[0]
        assert spine in switch.upstream
        assert switch.uplink_to(spine) is link
        assert falcon.port_map["H1"] == ("hostA", 0)
        assert "hostA" in falcon.drawers[0].hosts

    def test_second_admission_shares_the_trunk(self, falcon, spine):
        first = falcon.connect_fabric_host("H1", "hostA", spine, drawer=0)
        second = falcon.connect_fabric_host("H2", "hostB", spine, drawer=0)
        # One physical cable: both hosts ride the same Link object.
        assert second is first

    def test_disconnect_keeps_shared_trunk_until_last_host(
            self, falcon, spine):
        falcon.connect_fabric_host("H1", "hostA", spine, drawer=0)
        falcon.connect_fabric_host("H2", "hostB", spine, drawer=0)
        switch = falcon.drawers[0].switches[0]
        falcon.disconnect_host("H2")
        assert spine in switch.upstream  # hostA still rides it
        falcon.disconnect_host("H1")
        assert spine not in switch.upstream  # last sharer uncables

    def test_duplicate_host_rejected(self, falcon, spine):
        falcon.connect_fabric_host("H1", "hostA", spine, drawer=0)
        with pytest.raises(FalconError, match="already connected"):
            falcon.connect_fabric_host("H2", "hostA", spine, drawer=0)

    def test_used_port_rejected(self, falcon, spine):
        falcon.connect_fabric_host("H1", "hostA", spine, drawer=0)
        with pytest.raises(FalconError, match="already in use"):
            falcon.connect_fabric_host("H1", "hostB", spine, drawer=0)

    def test_connection_limit_enforced(self, topo, spine):
        falcon = Falcon4016(topo, "falcon0", mode=FalconMode.ADVANCED)
        for i in range(falcon.max_hosts_per_drawer):
            falcon.connect_fabric_host(falcon.HOST_PORTS[i], f"host{i}",
                                       spine, drawer=0)
        with pytest.raises(FalconError, match="connections"):
            falcon.connect_fabric_host("H4", "hostX", spine, drawer=0)
