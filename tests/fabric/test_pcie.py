"""Unit tests for repro.fabric.pcie."""

import pytest

from repro.fabric import PCIE_GEN4_X16, PCIeSwitch, RootComplex, Topology
from repro.sim import Environment


@pytest.fixture()
def topo():
    return Topology(Environment())


class TestRootComplex:
    def test_attach_detach(self, topo):
        rc = RootComplex(topo, "rc")
        topo.add_node("dev")
        rc.attach("dev")
        assert rc.children == ["dev"]
        assert topo.neighbors("dev") == ["rc"]
        rc.detach("dev")
        assert rc.children == []
        assert topo.neighbors("dev") == []

    def test_double_attach_rejected(self, topo):
        rc = RootComplex(topo, "rc")
        topo.add_node("dev")
        rc.attach("dev")
        with pytest.raises(ValueError):
            rc.attach("dev")

    def test_detach_unknown_rejected(self, topo):
        rc = RootComplex(topo, "rc")
        with pytest.raises(ValueError):
            rc.detach("ghost")

    def test_is_transit_node(self, topo):
        RootComplex(topo, "rc")
        assert topo.node("rc").transit


class TestPCIeSwitch:
    def test_port_accounting(self, topo):
        sw = PCIeSwitch(topo, "sw", ports=2)
        topo.add_node("d0")
        topo.add_node("d1")
        sw.attach("d0")
        assert sw.free_ports == 1
        sw.attach("d1")
        assert sw.free_ports == 0
        topo.add_node("d2")
        with pytest.raises(ValueError):
            sw.attach("d2")

    def test_detach_frees_port(self, topo):
        sw = PCIeSwitch(topo, "sw", ports=1)
        topo.add_node("d0")
        sw.attach("d0")
        sw.detach("d0")
        assert sw.free_ports == 1

    def test_upstream_not_counted_as_port(self, topo):
        sw = PCIeSwitch(topo, "sw", ports=1)
        rc = RootComplex(topo, "rc")
        sw.connect_upstream("rc", PCIE_GEN4_X16)
        assert sw.free_ports == 1
        assert sw.upstream == ["rc"]

    def test_disconnect_upstream(self, topo):
        sw = PCIeSwitch(topo, "sw")
        RootComplex(topo, "rc")
        sw.connect_upstream("rc", PCIE_GEN4_X16)
        sw.disconnect_upstream("rc")
        assert sw.upstream == []

    def test_routing_through_switch(self, topo):
        sw = PCIeSwitch(topo, "sw")
        topo.add_node("d0")
        topo.add_node("d1")
        sw.attach("d0")
        sw.attach("d1")
        route = topo.route("d0", "d1")
        assert route.nodes == ("d0", "sw", "d1")

    def test_zero_ports_rejected(self, topo):
        with pytest.raises(ValueError):
            PCIeSwitch(topo, "sw", ports=0)

    def test_link_to(self, topo):
        sw = PCIeSwitch(topo, "sw")
        topo.add_node("d0")
        link = sw.attach("d0")
        assert sw.link_to("d0") is link
