"""Fault-injection tests: lane degradation and cable failure."""

import pytest

from repro.fabric import (
    GB,
    LinkFailure,
    NoRouteError,
    PCIE_GEN4_X16,
    Topology,
)
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    t = Topology(env)
    t.add_node("a", kind="gpu")
    t.add_node("b", kind="gpu")
    return t


class TestDegradation:
    def test_degraded_link_halves_bandwidth(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        done = {}

        def xfer():
            yield topo.transfer("a", "b", 12.3 * GB)
            done["t"] = env.now

        env.process(xfer())
        env.run()
        baseline = done["t"]

        topo.degrade_link(link, lanes=8)

        def xfer2():
            t0 = env.now
            yield topo.transfer("a", "b", 12.3 * GB)
            done["t2"] = env.now - t0

        env.process(xfer2())
        env.run()
        assert done["t2"] == pytest.approx(2 * baseline, rel=0.01)

    def test_degradation_applies_to_inflight_flow(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        done = {}

        def xfer():
            yield topo.transfer("a", "b", 12.3 * GB)  # 1 s at full width
            done["t"] = env.now

        def chaos():
            yield env.timeout(0.5)
            topo.degrade_link(link, lanes=8)

        env.process(xfer())
        env.process(chaos())
        env.run()
        # Half the bytes at full rate (0.5 s), half at half rate (1 s).
        assert done["t"] == pytest.approx(1.5, rel=0.01)

    def test_restore_link(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        topo.degrade_link(link, lanes=4)
        topo.restore_link(link, PCIE_GEN4_X16)
        assert link.spec.bandwidth == PCIE_GEN4_X16.bandwidth

    def test_degradation_invalidates_routes(self, env, topo):
        # Two parallel paths; after degrading the direct one the longer
        # path can win on bandwidth... routing is latency-based, so just
        # verify route cache refresh doesn't crash and returns a route.
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        bw_before = topo.route("a", "b").bandwidth
        topo.degrade_link(link, lanes=4)
        bw_after = topo.route("a", "b").bandwidth
        assert bw_before == PCIE_GEN4_X16.bandwidth
        assert bw_after == pytest.approx(PCIE_GEN4_X16.bandwidth / 4)


class TestHardFailure:
    def test_fail_link_aborts_inflight_transfer(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        outcome = {}

        def xfer():
            try:
                yield topo.transfer("a", "b", 12.3 * GB)
                outcome["ok"] = True
            except LinkFailure as exc:
                outcome["failed"] = exc.link_name

        def chaos():
            yield env.timeout(0.4)
            killed = topo.fail_link(link)
            outcome["killed"] = killed

        env.process(xfer())
        env.process(chaos())
        env.run()
        assert outcome.get("failed") == link.name
        assert outcome["killed"] == 1

    def test_fail_link_removes_route(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        topo.fail_link(link)
        with pytest.raises(NoRouteError):
            topo.route("a", "b")

    def test_fail_idle_link_kills_nothing(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        assert topo.fail_link(link) == 0

    def test_survivor_flows_inherit_bandwidth(self, env, topo):
        # Two disjoint paths; failing one must not disturb the other.
        topo.add_node("c", kind="gpu")
        topo.add_node("d", kind="gpu")
        doomed = topo.add_link(PCIE_GEN4_X16, "a", "b")
        topo.add_link(PCIE_GEN4_X16, "c", "d")
        done = {}

        def safe():
            yield topo.transfer("c", "d", 12.3 * GB)
            done["safe"] = env.now

        def victim():
            try:
                yield topo.transfer("a", "b", 12.3 * GB)
            except LinkFailure:
                done["victim"] = "aborted"

        def chaos():
            yield env.timeout(0.2)
            topo.fail_link(doomed)

        env.process(safe())
        env.process(victim())
        env.process(chaos())
        env.run()
        assert done["victim"] == "aborted"
        assert done["safe"] == pytest.approx(1.0, rel=0.01)


class TestReseatAndReachability:
    def test_reseat_hard_failed_link(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        topo.fail_link(link)
        assert link.failed
        assert topo.failed_links() == [link]
        topo.restore_link(link)
        assert not link.failed
        assert topo.failed_links() == []
        assert topo.route("a", "b").bandwidth == PCIE_GEN4_X16.bandwidth

    def test_reseat_restores_original_width(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        topo.degrade_link(link, lanes=4)
        topo.fail_link(link)
        topo.restore_link(link)  # re-seat retrains at full width
        assert link.spec.bandwidth == PCIE_GEN4_X16.bandwidth

    def test_reachable_tracks_failures(self, env, topo):
        link = topo.add_link(PCIE_GEN4_X16, "a", "b")
        assert topo.reachable("a", "b")
        topo.fail_link(link)
        assert not topo.reachable("a", "b")
        topo.restore_link(link)
        assert topo.reachable("a", "b")

    def test_reachable_unknown_node(self, env, topo):
        assert not topo.reachable("a", "ghost")

    def test_no_route_error_is_descriptive(self, env, topo):
        with pytest.raises(NoRouteError) as exc_info:
            topo.route("a", "b")
        assert "a" in str(exc_info.value)
        assert "b" in str(exc_info.value)
