"""Tests for traffic aggregation helpers (repro.fabric.traffic)."""

import numpy as np
import pytest

from repro.fabric import (
    GB,
    PCIE_GEN4_X16,
    Topology,
    node_rate_series,
    node_traffic,
)
from repro.fabric.traffic import total_bytes_moved
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    t = Topology(env)
    t.add_node("sw", kind="sw", transit=True)
    for n in ("a", "b", "c"):
        t.add_node(n, kind="gpu")
        t.add_link(PCIE_GEN4_X16, "sw", n)
    return t


def run_transfer(env, topo, src, dst, nbytes):
    def go():
        yield topo.transfer(src, dst, nbytes)

    env.process(go())
    env.run()


class TestNodeTraffic:
    def test_ingress_egress_split(self, env, topo):
        run_transfer(env, topo, "a", "b", 10 * GB)
        t1 = env.now
        stats_a = node_traffic(topo, "a", 0.0, t1)
        stats_b = node_traffic(topo, "b", 0.0, t1)
        assert stats_a.egress_bytes == pytest.approx(10 * GB, rel=1e-6)
        assert stats_a.ingress_bytes == 0.0
        assert stats_b.ingress_bytes == pytest.approx(10 * GB, rel=1e-6)
        assert stats_b.egress_bytes == 0.0

    def test_switch_sees_both_directions(self, env, topo):
        run_transfer(env, topo, "a", "b", 4 * GB)
        t1 = env.now
        sw = node_traffic(topo, "sw", 0.0, t1)
        assert sw.ingress_bytes == pytest.approx(4 * GB, rel=1e-6)
        assert sw.egress_bytes == pytest.approx(4 * GB, rel=1e-6)

    def test_combined_rate_gbps(self, env, topo):
        run_transfer(env, topo, "a", "b", 12.3 * GB)  # ~1 s at line rate
        t1 = env.now
        stats = node_traffic(topo, "a", 0.0, t1)
        assert stats.combined_rate_gbps == pytest.approx(12.3, rel=0.01)

    def test_zero_window(self, env, topo):
        stats = node_traffic(topo, "a", 0.0, 0.0)
        assert stats.ingress_rate == 0.0
        assert stats.egress_rate == 0.0

    def test_uninvolved_node_zero(self, env, topo):
        run_transfer(env, topo, "a", "b", 1 * GB)
        stats = node_traffic(topo, "c", 0.0, env.now)
        assert stats.ingress_bytes == 0.0
        assert stats.egress_bytes == 0.0


class TestRateSeries:
    def test_series_sums_to_total(self, env, topo):
        run_transfer(env, topo, "a", "b", 12.3 * GB)
        t1 = env.now
        starts, ingress, egress = node_rate_series(topo, "b", width=0.1,
                                                   t_end=t1)
        assert starts.size > 5
        total = float(np.sum(ingress) * 0.1)
        assert total == pytest.approx(12.3 * GB, rel=0.02)
        assert float(np.sum(egress)) == 0.0

    def test_empty_before_time_zero(self, env, topo):
        starts, ingress, egress = node_rate_series(topo, "a", width=1.0,
                                                   t_end=0.0)
        assert starts.size == 0


class TestTotals:
    def test_total_bytes_moved(self, env, topo):
        run_transfer(env, topo, "a", "b", 2 * GB)
        # a->sw and sw->b both carry the 2 GB.
        assert total_bytes_moved(topo.links()) == pytest.approx(
            4 * GB, rel=1e-6)
