"""Unit tests for repro.fabric.topology routing and transfers."""

import pytest

from repro.fabric import (
    GB,
    NVLINK2_X1,
    NoRouteError,
    PCIE_GEN4_X16,
    Topology,
)
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def topo(env):
    return Topology(env)


def test_add_nodes_and_links(topo):
    topo.add_node("rc", kind="rc", transit=True)
    topo.add_node("gpu0", kind="gpu")
    link = topo.add_link(PCIE_GEN4_X16, "rc", "gpu0")
    assert topo.has_node("rc")
    assert topo.neighbors("gpu0") == ["rc"]
    assert link in topo.links_of("rc")


def test_duplicate_node_rejected(topo):
    topo.add_node("x")
    with pytest.raises(ValueError):
        topo.add_node("x")


def test_link_to_unknown_node_rejected(topo):
    topo.add_node("a")
    with pytest.raises(KeyError):
        topo.add_link(PCIE_GEN4_X16, "a", "missing")


def test_route_direct(topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    topo.add_link(NVLINK2_X1, "a", "b")
    route = topo.route("a", "b")
    assert route.hops == 1
    assert route.nodes == ("a", "b")
    assert route.bandwidth == NVLINK2_X1.bandwidth


def test_route_through_transit_only(topo):
    # a - gpu_mid - b (gpu_mid not transit) vs a - sw - b (transit)
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    topo.add_node("gpu_mid", kind="gpu")        # not transit
    topo.add_node("sw", kind="pcie-switch", transit=True)
    topo.add_link(NVLINK2_X1, "a", "gpu_mid")
    topo.add_link(NVLINK2_X1, "gpu_mid", "b")
    topo.add_link(PCIE_GEN4_X16, "a", "sw")
    topo.add_link(PCIE_GEN4_X16, "sw", "b")
    route = topo.route("a", "b")
    assert "gpu_mid" not in route.nodes
    assert "sw" in route.nodes


def test_route_self_is_empty(topo):
    topo.add_node("a")
    route = topo.route("a", "a")
    assert route.hops == 0
    assert route.latency == 0.0
    assert route.bandwidth == float("inf")


def test_no_route_raises(topo):
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(NoRouteError):
        topo.route("a", "b")


def test_route_prefers_lower_latency(topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    topo.add_node("sw", kind="sw", transit=True)
    # Direct NVLink (0.55us) vs 2x PCIe hops (2x0.39us) through switch.
    topo.add_link(NVLINK2_X1, "a", "b")
    topo.add_link(PCIE_GEN4_X16, "a", "sw")
    topo.add_link(PCIE_GEN4_X16, "sw", "b")
    route = topo.route("a", "b")
    assert route.hops == 1
    assert route.segments[0].link.spec is NVLINK2_X1


def test_route_cache_invalidated_on_change(topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    nv = topo.add_link(NVLINK2_X1, "a", "b")
    topo.add_node("sw", kind="sw", transit=True)
    topo.add_link(PCIE_GEN4_X16, "a", "sw")
    topo.add_link(PCIE_GEN4_X16, "sw", "b")
    assert topo.route("a", "b").hops == 1
    topo.remove_link(nv)
    assert topo.route("a", "b").hops == 2


def test_remove_node_removes_links(topo):
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link(PCIE_GEN4_X16, "a", "b")
    topo.remove_node("b")
    assert not topo.has_node("b")
    assert topo.links_of("a") == []


def test_remove_foreign_link_rejected(topo):
    topo.add_node("a")
    topo.add_node("b")
    link = topo.add_link(PCIE_GEN4_X16, "a", "b")
    topo.remove_link(link)
    with pytest.raises(ValueError):
        topo.remove_link(link)


def test_nodes_by_kind(topo):
    topo.add_node("g0", kind="gpu")
    topo.add_node("g1", kind="gpu")
    topo.add_node("sw", kind="switch")
    assert {n.name for n in topo.nodes("gpu")} == {"g0", "g1"}
    assert len(topo.nodes()) == 3


def test_transfer_time_includes_latency_and_streaming(env, topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    topo.add_link(NVLINK2_X1, "a", "b")
    done = {}

    def go():
        yield topo.transfer("a", "b", 24.1 * GB)
        done["t"] = env.now

    env.process(go())
    env.run()
    expected = topo.transfer_overhead + NVLINK2_X1.latency + 1.0
    assert done["t"] == pytest.approx(expected, rel=1e-6)


def test_transfer_accounts_traffic(env, topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    link = topo.add_link(NVLINK2_X1, "a", "b")

    def go():
        yield topo.transfer("a", "b", 5 * GB)

    env.process(go())
    env.run()
    assert link.bytes_moved("a", "b") == pytest.approx(5 * GB, rel=1e-6)


def test_concurrent_transfers_share_bandwidth(env, topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("b", kind="gpu")
    topo.add_link(NVLINK2_X1, "a", "b")
    finished = []

    def go():
        yield topo.transfer("a", "b", 24.1 * GB)
        finished.append(env.now)

    env.process(go())
    env.process(go())
    env.run()
    # Two equal flows share the link: ~2s streaming.
    assert finished[0] == pytest.approx(2.0, rel=1e-3)


def test_path_latency_and_bandwidth(topo):
    topo.add_node("a", kind="gpu")
    topo.add_node("sw", kind="sw", transit=True)
    topo.add_node("b", kind="gpu")
    topo.add_link(PCIE_GEN4_X16, "a", "sw")
    topo.add_link(PCIE_GEN4_X16, "sw", "b")
    lat = topo.path_latency("a", "b")
    assert lat == pytest.approx(
        topo.transfer_overhead + 2 * PCIE_GEN4_X16.latency)
    assert topo.path_bandwidth("a", "b") == PCIE_GEN4_X16.bandwidth
