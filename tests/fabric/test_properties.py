"""Property-based tests on fabric invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import (
    GB,
    LinkSpec,
    PCIE_GEN4_X16,
    Protocol,
    Topology,
)
from repro.fabric.flows import FlowScheduler, Segment
from repro.fabric.link import Link
from repro.sim import Environment


def random_tree_topology(edges: list[int]) -> tuple[Topology, list[str]]:
    """Build a tree: node i>0 attaches to node edges[i-1] (< i).

    All interior nodes transit-enabled so everything is routable.
    """
    env = Environment()
    topo = Topology(env)
    n = len(edges) + 1
    names = [f"n{i}" for i in range(n)]
    for name in names:
        topo.add_node(name, kind="x", transit=True)
    for i, parent in enumerate(edges, start=1):
        topo.add_link(PCIE_GEN4_X16, names[parent], names[i])
    return topo, names


@st.composite
def tree_edges(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    return [draw(st.integers(min_value=0, max_value=i))
            for i in range(n - 1)]


class TestRoutingProperties:
    @settings(max_examples=40, deadline=None)
    @given(edges=tree_edges(), data=st.data())
    def test_route_symmetry(self, edges, data):
        """In an undirected graph, A->B and B->A have identical cost."""
        topo, names = random_tree_topology(edges)
        a = data.draw(st.sampled_from(names))
        b = data.draw(st.sampled_from(names))
        fwd = topo.route(a, b)
        rev = topo.route(b, a)
        assert fwd.hops == rev.hops
        assert fwd.latency == pytest.approx(rev.latency)
        assert fwd.nodes == tuple(reversed(rev.nodes))

    @settings(max_examples=40, deadline=None)
    @given(edges=tree_edges(), data=st.data())
    def test_triangle_inequality(self, edges, data):
        """route(a,c) is never longer than route(a,b) + route(b,c)."""
        topo, names = random_tree_topology(edges)
        a = data.draw(st.sampled_from(names))
        b = data.draw(st.sampled_from(names))
        c = data.draw(st.sampled_from(names))
        ac = topo.route(a, c).latency
        via_b = topo.route(a, b).latency + topo.route(b, c).latency
        assert ac <= via_b + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(edges=tree_edges(), data=st.data())
    def test_route_endpoints_and_continuity(self, edges, data):
        topo, names = random_tree_topology(edges)
        a = data.draw(st.sampled_from(names))
        b = data.draw(st.sampled_from(names))
        route = topo.route(a, b)
        if a == b:
            assert route.hops == 0
            return
        assert route.nodes[0] == a
        assert route.nodes[-1] == b
        for seg, nxt in zip(route.segments, route.nodes[1:]):
            assert seg.dst == nxt


class TestFlowConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.floats(min_value=0.01, max_value=50.0),
                       min_size=1, max_size=5),
        starts=st.lists(st.floats(min_value=0.0, max_value=3.0),
                        min_size=1, max_size=5),
    )
    def test_bytes_conserved_per_link(self, sizes, starts):
        """Every started byte is eventually accounted on every segment."""
        n = min(len(sizes), len(starts))
        sizes, starts = sizes[:n], starts[:n]
        env = Environment()
        sched = FlowScheduler(env)
        spec = LinkSpec("t", Protocol.PCIE4, 16, 5 * GB, 0.0)
        l1 = Link(spec, "a", "b")
        l2 = Link(spec, "b", "c")
        segs = [Segment(l1, "a", "b"), Segment(l2, "b", "c")]

        def flow(delay, nbytes):
            yield env.timeout(delay)
            yield sched.start_flow(segs, nbytes)

        for t0, size in zip(starts, sizes):
            env.process(flow(t0, size * GB))
        env.run()
        total = sum(sizes) * GB
        assert l1.bytes_moved("a", "b") == pytest.approx(total, rel=1e-6)
        assert l2.bytes_moved("b", "c") == pytest.approx(total, rel=1e-6)
        assert sched.active_flows == []

    @settings(max_examples=30, deadline=None)
    @given(
        n_flows=st.integers(min_value=1, max_value=6),
        bw=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_makespan_lower_bound(self, n_flows, bw):
        """No schedule can beat bytes/capacity on the bottleneck link."""
        env = Environment()
        sched = FlowScheduler(env)
        spec = LinkSpec("t", Protocol.PCIE4, 16, bw * GB, 0.0)
        link = Link(spec, "a", "b")
        seg = Segment(link, "a", "b")
        per_flow = 2 * GB

        def flow():
            yield sched.start_flow([seg], per_flow)

        for _ in range(n_flows):
            env.process(flow())
        env.run()
        lower_bound = n_flows * per_flow / (bw * GB)
        assert env.now >= lower_bound * (1 - 1e-9)
        assert env.now == pytest.approx(lower_bound, rel=1e-6)
