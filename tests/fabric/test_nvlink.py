"""Unit tests for the NVLink hybrid cube mesh builder."""

import pytest

from repro.fabric import (
    GB,
    HYBRID_CUBE_MESH_EDGES,
    NVLINK2_X1,
    NVLINK2_X2,
    RING_ORDER,
    Topology,
    build_hybrid_cube_mesh,
)
from repro.sim import Environment


def make_mesh():
    env = Environment()
    topo = Topology(env)
    gpus = [f"gpu{i}" for i in range(8)]
    for g in gpus:
        topo.add_node(g, kind="gpu")
    links = build_hybrid_cube_mesh(topo, gpus)
    return topo, gpus, links


def test_edge_count_and_total_links():
    # 16 adjacent pairs; 24 total NVLink bricks (6 per GPU).
    assert len(HYBRID_CUBE_MESH_EDGES) == 16
    total = sum(count for _, _, count in HYBRID_CUBE_MESH_EDGES)
    assert total == 24


def test_each_gpu_has_six_links():
    per_gpu = {i: 0 for i in range(8)}
    for a, b, count in HYBRID_CUBE_MESH_EDGES:
        per_gpu[a] += count
        per_gpu[b] += count
    assert all(v == 6 for v in per_gpu.values())


def test_mesh_wiring():
    topo, gpus, links = make_mesh()
    assert len(links) == 16
    # Each GPU has exactly 4 NVLink neighbours.
    for g in gpus:
        assert len(topo.neighbors(g)) == 4


def test_link_specs_match_multiplicity():
    topo, gpus, links = make_mesh()
    by_pair = {}
    for (a, b, count), link in zip(HYBRID_CUBE_MESH_EDGES, links):
        by_pair[(a, b)] = (count, link)
    for (a, b), (count, link) in by_pair.items():
        expected = NVLINK2_X2 if count == 2 else NVLINK2_X1
        assert link.spec is expected


def test_requires_eight_gpus():
    env = Environment()
    topo = Topology(env)
    for i in range(4):
        topo.add_node(f"g{i}", kind="gpu")
    with pytest.raises(ValueError):
        build_hybrid_cube_mesh(topo, [f"g{i}" for i in range(4)])


def test_ring_order_is_hamiltonian_over_nvlink():
    adjacency = set()
    for a, b, _ in HYBRID_CUBE_MESH_EDGES:
        adjacency.add((a, b))
        adjacency.add((b, a))
    assert sorted(RING_ORDER) == list(range(8))
    n = len(RING_ORDER)
    for i in range(n):
        a, b = RING_ORDER[i], RING_ORDER[(i + 1) % n]
        assert (a, b) in adjacency, f"ring hop {a}->{b} is not NVLink"


def test_mean_adjacent_bandwidth_matches_table4_LL():
    # Table IV: L-L bidirectional bandwidth 72.37 GB/s (mean over pairs).
    topo, gpus, links = make_mesh()
    rates = [2 * link.spec.bandwidth / GB for link in links]
    mean = sum(rates) / len(rates)
    assert mean == pytest.approx(72.37, rel=0.02)
