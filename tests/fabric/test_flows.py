"""Unit and property tests for the max-min fair flow scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import GB, Link, LinkSpec, Protocol
from repro.fabric.flows import FlowScheduler, Segment
from repro.sim import Environment


def make_link(bw_gbps: float, a: str = "a", b: str = "b") -> Link:
    spec = LinkSpec(f"test {bw_gbps}GB/s", Protocol.PCIE4, 16,
                    bw_gbps * GB, 0.0)
    return Link(spec, a, b)


def run_transfers(links_segments_bytes):
    """Run several flows started at t=0; return list of completion times."""
    env = Environment()
    sched = FlowScheduler(env)
    finish = {}

    def runner(idx, segments, nbytes):
        yield sched.start_flow(segments, nbytes)
        finish[idx] = env.now

    for idx, (segments, nbytes) in enumerate(links_segments_bytes):
        env.process(runner(idx, segments, nbytes))
    env.run()
    return [finish[i] for i in range(len(links_segments_bytes))]


def test_single_flow_full_bandwidth():
    link = make_link(10.0)
    seg = Segment(link, "a", "b")
    (t,) = run_transfers([([seg], 10 * GB)])
    assert t == pytest.approx(1.0)


def test_two_flows_share_link_fairly():
    link = make_link(10.0)
    seg = Segment(link, "a", "b")
    times = run_transfers([([seg], 10 * GB), ([seg], 10 * GB)])
    # Each gets 5 GB/s: both finish at t=2.
    assert times == pytest.approx([2.0, 2.0])


def test_early_finisher_releases_bandwidth():
    link = make_link(10.0)
    seg = Segment(link, "a", "b")
    times = run_transfers([([seg], 5 * GB), ([seg], 10 * GB)])
    # Both at 5 GB/s until t=1 (flow0 done, 5 GB delivered each);
    # flow1's remaining 5 GB then runs at 10 GB/s -> t=1.5.
    assert times == pytest.approx([1.0, 1.5])


def test_opposite_directions_do_not_contend():
    link = make_link(10.0)
    fwd = Segment(link, "a", "b")
    rev = Segment(link, "b", "a")
    times = run_transfers([([fwd], 10 * GB), ([rev], 10 * GB)])
    assert times == pytest.approx([1.0, 1.0])


def test_multi_link_path_bottleneck():
    fast = make_link(100.0, "a", "b")
    slow = make_link(10.0, "b", "c")
    segs = [Segment(fast, "a", "b"), Segment(slow, "b", "c")]
    (t,) = run_transfers([(segs, 10 * GB)])
    assert t == pytest.approx(1.0)


def test_max_min_unequal_paths():
    # Flow A uses only the shared link; flow B is additionally limited by
    # its own 2 GB/s private link.  Max-min: B gets 2, A gets 8.
    shared = make_link(10.0, "a", "b")
    private = make_link(2.0, "b", "c")
    seg_a = [Segment(shared, "a", "b")]
    seg_b = [Segment(shared, "a", "b"), Segment(private, "b", "c")]
    times = run_transfers([(seg_a, 8 * GB), (seg_b, 2 * GB)])
    assert times == pytest.approx([1.0, 1.0])


def test_zero_byte_flow_completes_instantly():
    env = Environment()
    sched = FlowScheduler(env)
    link = make_link(1.0)
    done = sched.start_flow([Segment(link, "a", "b")], 0.0)
    env.run()
    assert done.ok
    assert env.now == 0.0


def test_negative_bytes_rejected():
    env = Environment()
    sched = FlowScheduler(env)
    with pytest.raises(ValueError):
        sched.start_flow([], -1.0)


def test_no_segment_flow_completes_instantly():
    env = Environment()
    sched = FlowScheduler(env)
    done = sched.start_flow([], 5 * GB)
    env.run()
    assert done.ok


def test_traffic_accounted_on_links():
    link = make_link(10.0)
    seg = Segment(link, "a", "b")
    run_transfers([([seg], 10 * GB), ([seg], 5 * GB)])
    assert link.bytes_moved("a", "b") == pytest.approx(15 * GB, rel=1e-6)
    assert link.bytes_moved("b", "a") == 0.0


def test_staggered_arrival_rate_adjustment():
    env = Environment()
    sched = FlowScheduler(env)
    link = make_link(10.0)
    seg = Segment(link, "a", "b")
    finish = {}

    def first():
        yield sched.start_flow([seg], 10 * GB)
        finish["first"] = env.now

    def second():
        yield env.timeout(0.5)
        yield sched.start_flow([seg], 10 * GB)
        finish["second"] = env.now

    env.process(first())
    env.process(second())
    env.run()
    # First: 5 GB alone (0.5s), then shares. Remaining 5 GB at 5 GB/s -> 1.5.
    assert finish["first"] == pytest.approx(1.5)
    # Second: 5 GB at 5 GB/s (until 1.5), then 5 GB at 10 GB/s -> 2.0.
    assert finish["second"] == pytest.approx(2.0)


def test_completed_counter():
    env = Environment()
    sched = FlowScheduler(env)
    link = make_link(10.0)
    seg = Segment(link, "a", "b")

    def go():
        yield sched.start_flow([seg], 1 * GB)

    env.process(go())
    env.process(go())
    env.run()
    assert sched.completed == 2
    assert sched.active_flows == []


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=0.01, max_value=100.0),
                   min_size=1, max_size=6),
    bw=st.floats(min_value=0.5, max_value=50.0),
)
def test_property_work_conservation(sizes, bw):
    """Total completion time of N flows on one link >= serial lower bound,
    and equal to it when all flows run the link at capacity throughout."""
    link = make_link(bw)
    seg = Segment(link, "a", "b")
    times = run_transfers([([seg], s * GB) for s in sizes])
    total_bytes = sum(sizes) * GB
    # The link is never idle until the last completion, so the makespan
    # equals the serial time.
    assert max(times) == pytest.approx(total_bytes / (bw * GB), rel=1e-6)
    # All bytes accounted.
    assert link.bytes_moved("a", "b") == pytest.approx(total_bytes, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    bw=st.floats(min_value=1.0, max_value=40.0),
)
def test_property_equal_flows_finish_together(n, bw):
    link = make_link(bw)
    seg = Segment(link, "a", "b")
    times = run_transfers([([seg], 2 * GB)] * n)
    assert all(t == pytest.approx(times[0], rel=1e-9) for t in times)
    assert times[0] == pytest.approx(n * 2 / bw, rel=1e-6)
