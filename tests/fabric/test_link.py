"""Unit tests for repro.fabric.link."""

import pytest

from repro.fabric import (
    CDFP_400G,
    GB,
    Link,
    LinkSpec,
    NVLINK2_X1,
    NVLINK2_X2,
    PCIE_GEN4_X8,
    PCIE_GEN4_X16,
    Protocol,
)


class TestLinkSpec:
    def test_catalog_sanity(self):
        assert PCIE_GEN4_X16.lanes == 16
        assert PCIE_GEN4_X16.protocol is Protocol.PCIE4
        assert NVLINK2_X2.bandwidth == pytest.approx(2 * NVLINK2_X1.bandwidth)

    def test_bidirectional_bandwidth(self):
        assert PCIE_GEN4_X16.bidirectional_bandwidth == pytest.approx(
            2 * PCIE_GEN4_X16.bandwidth)

    def test_scaled_lanes(self):
        assert PCIE_GEN4_X8.lanes == 8
        assert PCIE_GEN4_X8.bandwidth == pytest.approx(
            PCIE_GEN4_X16.bandwidth / 2)
        assert "x8" in PCIE_GEN4_X8.name

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            PCIE_GEN4_X16.scaled(0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", Protocol.PCIE4, 0, 1 * GB, 1e-6)
        with pytest.raises(ValueError):
            LinkSpec("bad", Protocol.PCIE4, 16, -1.0, 1e-6)
        with pytest.raises(ValueError):
            LinkSpec("bad", Protocol.PCIE4, 16, 1 * GB, -1e-6)

    def test_falcon_calibration_table4(self):
        # Table IV effective payload bandwidths (bidirectional, GB/s).
        assert PCIE_GEN4_X16.bidirectional_bandwidth / GB == pytest.approx(
            24.6, abs=0.5)  # F-F 24.47
        assert CDFP_400G.bidirectional_bandwidth / GB == pytest.approx(
            19.7, abs=0.5)  # F-L 19.64
        # NVLink mesh: mean over 1-link and 2-link adjacent pairs ~ 72.3
        mean = (NVLINK2_X1.bidirectional_bandwidth
                + NVLINK2_X2.bidirectional_bandwidth) / 2 / GB
        assert mean == pytest.approx(72.3, abs=1.0)  # L-L 72.37


class TestLink:
    def test_endpoints_and_other(self):
        link = Link(PCIE_GEN4_X16, "a", "b")
        assert link.endpoints == ("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(ValueError):
            link.other("c")

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Link(PCIE_GEN4_X16, "x", "x")

    def test_directional_accounting(self):
        link = Link(PCIE_GEN4_X16, "a", "b")
        link.account(1.0, "a", "b", 1000.0)
        link.account(2.0, "b", "a", 500.0)
        assert link.bytes_moved("a", "b") == 1000.0
        assert link.bytes_moved("b", "a") == 500.0

    def test_invalid_direction_rejected(self):
        link = Link(PCIE_GEN4_X16, "a", "b")
        with pytest.raises(ValueError):
            link.account(0.0, "a", "c", 10.0)

    def test_mean_rate(self):
        link = Link(PCIE_GEN4_X16, "a", "b")
        link.account(10.0, "a", "b", 100.0 * GB)
        assert link.mean_rate("a", "b", 0.0, 10.0) == pytest.approx(10 * GB)

    def test_unique_ids(self):
        l1 = Link(PCIE_GEN4_X16, "a", "b")
        l2 = Link(PCIE_GEN4_X16, "a", "b")
        assert l1.id != l2.id
