"""Unit and property tests for the incremental max-min solver.

The property tests drive random sequences of flow add / remove /
capacity-poke operations and assert after every mutation batch that the
incremental solver's rates match the batch water-filling oracle at
1e-9 — the equivalence contract :class:`repro.fabric.maxmin.MaxMinSolver`
documents.  A second property pins byte conservation: every byte a
completed flow delivered is accounted on the directional counters of the
links it crossed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric import GB, Link, LinkSpec, Protocol
from repro.fabric.flows import FlowScheduler, Segment
from repro.fabric.maxmin import MaxMinSolver, apply_rates, water_fill
from repro.sim import Environment


# ---------------------------------------------------------------------------
# Duck-typed flows over mutable capacities (no Environment needed).
# ---------------------------------------------------------------------------

class FakeSegment:
    """Directed capacity whose value reads a shared, pokeable table."""

    __slots__ = ("key", "_capacities")

    def __init__(self, key, capacities):
        self.key = key
        self._capacities = capacities

    @property
    def capacity(self):
        return self._capacities[self.key]


class FakeFlow:
    __slots__ = ("name", "segments", "rate")

    def __init__(self, name, keys, capacities):
        self.name = name
        self.segments = [FakeSegment(k, capacities) for k in keys]
        self.rate = 0.0

    def __repr__(self):
        return f"FakeFlow({self.name})"


# ---------------------------------------------------------------------------
# water_fill oracle basics
# ---------------------------------------------------------------------------

def test_water_fill_fair_share():
    caps = {("l", 0): 9.0}
    flows = [FakeFlow(i, [("l", 0)], caps) for i in range(3)]
    rates = water_fill(flows)
    assert all(rates[f] == pytest.approx(3.0) for f in flows)


def test_water_fill_unconstrained_flow_gets_inf():
    flows = [FakeFlow("free", [], {})]
    assert water_fill(flows)[flows[0]] == float("inf")


def test_water_fill_bottleneck_then_redistribute():
    # f0 crosses a (cap 2) and b (cap 10); f1 crosses only b.
    caps = {"a": 2.0, "b": 10.0}
    f0 = FakeFlow(0, ["a", "b"], caps)
    f1 = FakeFlow(1, ["b"], caps)
    rates = water_fill([f0, f1])
    assert rates[f0] == pytest.approx(2.0)
    # f1 inherits the slack on b.
    assert rates[f1] == pytest.approx(8.0)


def test_apply_rates_writes_flows():
    caps = {"x": 4.0}
    flows = [FakeFlow(i, ["x"], caps) for i in range(2)]
    apply_rates(flows)
    assert [f.rate for f in flows] == pytest.approx([2.0, 2.0])


# ---------------------------------------------------------------------------
# MaxMinSolver unit behaviour
# ---------------------------------------------------------------------------

def test_solver_add_solve_matches_oracle():
    caps = {"x": 6.0}
    solver = MaxMinSolver()
    flows = [FakeFlow(i, ["x"], caps) for i in range(3)]
    for f in flows:
        solver.add(f)
    assert solver.solve() == 3
    assert [f.rate for f in flows] == pytest.approx([2.0] * 3)
    solver.assert_equivalent()


def test_solver_solve_is_noop_when_clean():
    solver = MaxMinSolver()
    f = FakeFlow(0, ["x"], {"x": 1.0})
    solver.add(f)
    assert solver.solve() == 1
    assert solver.solve() == 0


def test_solver_component_isolation():
    """A mutation on one component must not re-rate the other."""
    caps = {"left": 10.0, "right": 10.0}
    left = [FakeFlow(f"l{i}", ["left"], caps) for i in range(2)]
    right = [FakeFlow(f"r{i}", ["right"], caps) for i in range(2)]
    solver = MaxMinSolver()
    for f in left + right:
        solver.add(f)
    solver.solve()

    # Scribble on the right-component rates: a correct incremental solve
    # of a left-only mutation must leave the scribbles in place.
    for f in right:
        f.rate = -1.0
    newcomer = FakeFlow("l2", ["left"], caps)
    solver.add(newcomer)
    touched = solver.solve()
    assert touched == 3  # left flows + newcomer only
    assert [f.rate for f in left + [newcomer]] == pytest.approx(
        [10.0 / 3] * 3)
    assert [f.rate for f in right] == [-1.0, -1.0]


def test_solver_remove_redistributes():
    caps = {"x": 8.0}
    solver = MaxMinSolver()
    flows = [FakeFlow(i, ["x"], caps) for i in range(4)]
    for f in flows:
        solver.add(f)
    solver.solve()
    solver.remove(flows[0])
    assert solver.solve() == 3
    assert [f.rate for f in flows[1:]] == pytest.approx([8.0 / 3] * 3)
    solver.assert_equivalent()


def test_solver_remove_unknown_flow_is_noop():
    solver = MaxMinSolver()
    solver.remove(FakeFlow("ghost", [], {}))
    assert solver.solve() == 0


def test_solver_touch_picks_up_capacity_change():
    caps = {"x": 10.0}
    solver = MaxMinSolver()
    f = FakeFlow(0, ["x"], caps)
    solver.add(f)
    solver.solve()
    assert f.rate == pytest.approx(10.0)
    caps["x"] = 4.0
    solver.touch("x")
    assert solver.solve() == 1
    assert f.rate == pytest.approx(4.0)
    solver.assert_equivalent()


def test_solver_touch_all_rerates_everything():
    caps = {"a": 6.0, "b": 6.0}
    solver = MaxMinSolver()
    flows = [FakeFlow(0, ["a"], caps), FakeFlow(1, ["b"], caps)]
    for f in flows:
        solver.add(f)
    solver.solve()
    caps["a"] = 2.0
    caps["b"] = 3.0
    solver.touch_all()
    assert solver.solve() == 2
    assert flows[0].rate == pytest.approx(2.0)
    assert flows[1].rate == pytest.approx(3.0)


def test_solver_flows_on_union():
    caps = {"a": 1.0, "b": 1.0}
    fa = FakeFlow("a", ["a"], caps)
    fb = FakeFlow("b", ["b"], caps)
    fab = FakeFlow("ab", ["a", "b"], caps)
    solver = MaxMinSolver()
    for f in (fa, fb, fab):
        solver.add(f)
    assert solver.flows_on("a") == {fa, fab}
    assert solver.flows_on("a", "b") == {fa, fb, fab}
    assert solver.flows_on("missing") == set()


def test_solver_solve_full_matches_incremental():
    caps = {"a": 5.0, "b": 3.0}
    flows = [FakeFlow(0, ["a"], caps), FakeFlow(1, ["a", "b"], caps),
             FakeFlow(2, ["b"], caps)]
    solver = MaxMinSolver()
    for f in flows:
        solver.add(f)
    solver.solve()
    incremental = [f.rate for f in flows]
    assert solver.solve_full() == 3
    assert [f.rate for f in flows] == pytest.approx(incremental, rel=1e-9)


def test_assert_equivalent_raises_on_stale_rate():
    caps = {"x": 4.0}
    solver = MaxMinSolver()
    f = FakeFlow(0, ["x"], caps)
    solver.add(f)
    solver.solve()
    f.rate = 999.0
    with pytest.raises(AssertionError, match="diverged"):
        solver.assert_equivalent()


# ---------------------------------------------------------------------------
# Property: random mutation sequences — incremental == batch at 1e-9.
# ---------------------------------------------------------------------------

N_LINKS = 6


@st.composite
def mutation_ops(draw):
    """A sequence of (op, payload) mutations over N_LINKS shared links."""
    ops = []
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        op = draw(st.sampled_from(["add", "remove", "poke"]))
        if op == "add":
            keys = draw(st.lists(st.integers(0, N_LINKS - 1),
                                 min_size=1, max_size=3, unique=True))
            ops.append(("add", tuple(keys)))
        elif op == "remove":
            ops.append(("remove", draw(st.integers(0, 10 ** 6))))
        else:
            link = draw(st.integers(0, N_LINKS - 1))
            cap = draw(st.floats(min_value=0.5, max_value=50.0))
            ops.append(("poke", (link, cap)))
    return ops


@settings(max_examples=60, deadline=None)
@given(ops=mutation_ops())
def test_property_incremental_matches_batch(ops):
    caps = {k: 10.0 for k in range(N_LINKS)}
    solver = MaxMinSolver()
    alive = []
    serial = 0
    for op, payload in ops:
        if op == "add":
            flow = FakeFlow(serial, list(payload), caps)
            serial += 1
            alive.append(flow)
            solver.add(flow)
        elif op == "remove":
            if alive:
                victim = alive.pop(payload % len(alive))
                solver.remove(victim)
        else:
            link, cap = payload
            caps[link] = cap
            solver.touch(link)
        solver.solve()
        # The contract: after every mutation the incremental rates are
        # indistinguishable from a from-scratch batch water-fill.
        solver.assert_equivalent(1e-9)


@settings(max_examples=25, deadline=None)
@given(ops=mutation_ops())
def test_property_solve_touches_no_more_than_full(ops):
    """Incremental work is bounded by the full re-solve's."""
    caps = {k: 10.0 for k in range(N_LINKS)}
    solver = MaxMinSolver()
    alive = []
    serial = 0
    for op, payload in ops:
        if op == "add":
            flow = FakeFlow(serial, list(payload), caps)
            serial += 1
            alive.append(flow)
            solver.add(flow)
        elif op == "remove":
            if alive:
                solver.remove(alive.pop(payload % len(alive)))
        else:
            caps[payload[0]] = payload[1]
            solver.touch(payload[0])
        assert solver.solve() <= len(solver)


# ---------------------------------------------------------------------------
# Property: live scheduler — equivalence during runs + byte conservation.
# ---------------------------------------------------------------------------

def _make_link(bw_gbps, a, b):
    spec = LinkSpec(f"test {bw_gbps}GB/s", Protocol.PCIE4, 16,
                    bw_gbps * GB, 0.0)
    return Link(spec, a, b)


@settings(max_examples=30, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(
            st.lists(st.integers(0, 3), min_size=1, max_size=3,
                     unique=True),      # which links the flow crosses
            st.floats(min_value=0.05, max_value=4.0),   # GB to move
            st.floats(min_value=0.0, max_value=2.0),    # start time
        ),
        min_size=1, max_size=10),
    bws=st.lists(st.floats(min_value=1.0, max_value=20.0),
                 min_size=4, max_size=4),
)
def test_property_scheduler_equivalence_and_byte_conservation(jobs, bws):
    env = Environment()
    sched = FlowScheduler(env, incremental=True)
    links = [_make_link(bw, f"n{i}", f"n{i + 1}")
             for i, bw in enumerate(bws)]

    expected = {i: 0.0 for i in range(len(links))}

    def runner(link_ids, gb, delay):
        if delay > 0:
            yield env.timeout(delay)
        segments = [Segment(links[i], f"n{i}", f"n{i + 1}")
                    for i in link_ids]
        # Rates must match the batch oracle at every decision point.
        sched.assert_rates_equivalent(1e-9)
        yield sched.start_flow(segments, gb * GB)
        sched.assert_rates_equivalent(1e-9)

    for link_ids, gb, delay in jobs:
        env.process(runner(link_ids, gb, delay))
        for i in link_ids:
            expected[i] += gb * GB
    env.run()

    assert sched.active_flows == []
    assert sched.completed == len(jobs)
    # Byte conservation: each directional link counter equals the sum of
    # the payloads of every completed flow that crossed it.
    for i, link in enumerate(links):
        assert link.bytes_moved(f"n{i}", f"n{i + 1}") == pytest.approx(
            expected[i], rel=1e-6, abs=1e-3)
        assert link.bytes_moved(f"n{i + 1}", f"n{i}") == 0.0
