"""Unit tests for the Management Center Server (roles, grants, tenancy)."""

import pytest

from repro.fabric import Falcon4016, Topology
from repro.management import (
    ManagementCenterServer,
    PermissionError_,
    Role,
)
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def setup(env):
    """An MCS with one falcon, one host, and some installed devices."""
    topo = Topology(env)
    mcs = ManagementCenterServer(env)
    falcon = Falcon4016(topo, "falcon0")
    mcs.register_falcon(falcon)
    topo.add_node("host0/rc", kind="rc", transit=True)
    mcs.register_host("host0")
    falcon.connect_host("H1", "host0", "host0/rc", drawer=0)
    for i in range(4):
        topo.add_node(f"gpu{i}", kind="gpu")
        falcon.install_device(f"gpu{i}", drawer=0)
    return mcs, falcon, topo


class TestAccounts:
    def test_admin_exists_by_default(self, setup):
        mcs, _, _ = setup
        assert mcs.users["admin"].role is Role.ADMINISTRATOR

    def test_create_user_requires_admin(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        with pytest.raises(PermissionError_):
            mcs.create_user("alice", "eve")

    def test_duplicate_user_rejected(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        with pytest.raises(ValueError):
            mcs.create_user("admin", "alice")

    def test_login_records_time_and_event(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        account = mcs.login("alice")
        assert account.last_login == 0.0
        assert mcs.log.query(kind="login", actor="alice")

    def test_unknown_user(self, setup):
        mcs, _, _ = setup
        with pytest.raises(KeyError):
            mcs.login("ghost")


class TestGrants:
    def test_grant_and_attach(self, setup):
        mcs, falcon, _ = setup
        mcs.create_user("admin", "alice")
        mcs.grant_device("admin", "alice", "gpu0")
        mcs.grant_host("admin", "alice", "host0")
        mcs.attach("alice", "gpu0", "host0")
        assert falcon.owner_of("gpu0") == "host0"

    def test_attach_without_device_grant_denied(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        mcs.grant_host("admin", "alice", "host0")
        with pytest.raises(PermissionError_):
            mcs.attach("alice", "gpu0", "host0")

    def test_attach_without_host_grant_denied(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        mcs.grant_device("admin", "alice", "gpu0")
        with pytest.raises(PermissionError_):
            mcs.attach("alice", "gpu0", "host0")

    def test_tenant_isolation(self, setup):
        """Users can't operate on each other's resources (paper §II-D)."""
        mcs, falcon, _ = setup
        mcs.create_user("admin", "alice")
        mcs.create_user("admin", "bob")
        mcs.grant_device("admin", "alice", "gpu0")
        mcs.grant_host("admin", "alice", "host0")
        mcs.attach("alice", "gpu0", "host0")
        with pytest.raises(PermissionError_):
            mcs.detach("bob", "gpu0")
        # A device granted to alice can't be granted to bob.
        with pytest.raises(PermissionError_):
            mcs.grant_device("admin", "bob", "gpu0")

    def test_admin_can_detach_anything(self, setup):
        mcs, falcon, _ = setup
        mcs.create_user("admin", "alice")
        mcs.grant_device("admin", "alice", "gpu0")
        mcs.grant_host("admin", "alice", "host0")
        mcs.attach("alice", "gpu0", "host0")
        mcs.detach("admin", "gpu0")
        assert falcon.owner_of("gpu0") is None

    def test_revoke_then_regrant(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        mcs.create_user("admin", "bob")
        mcs.grant_device("admin", "alice", "gpu1")
        mcs.revoke_device("admin", "alice", "gpu1")
        mcs.grant_device("admin", "bob", "gpu1")
        assert "gpu1" in mcs.users["bob"].granted_devices

    def test_grant_unknown_device(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        with pytest.raises(KeyError):
            mcs.grant_device("admin", "alice", "nonexistent")

    def test_grant_unknown_host(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        with pytest.raises(KeyError):
            mcs.grant_host("admin", "alice", "hostX")


class TestViews:
    def test_resource_list_covers_all_slots(self, setup):
        mcs, _, _ = setup
        resources = mcs.resource_list()
        assert len(resources) == 16  # 2 drawers x 8 slots
        occupied = [r for r in resources if r["device"]]
        assert len(occupied) == 4
        assert all(r["link_speed"] for r in occupied)

    def test_topology_view(self, setup):
        mcs, _, _ = setup
        view = mcs.topology_view()
        assert "falcon0" in view
        assert view["falcon0"]["ports"]["H1"]["host"] == "host0"

    def test_event_log_export_admin_only(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        with pytest.raises(PermissionError_):
            mcs.export_event_log("alice")
        log = mcs.export_event_log("admin")
        assert any(e["kind"] == "falcon_registered" for e in log)

    def test_config_export_import(self, setup):
        mcs, falcon, _ = setup
        mcs.create_user("admin", "alice")
        mcs.grant_device("admin", "alice", "gpu0")
        mcs.grant_host("admin", "alice", "host0")
        mcs.attach("alice", "gpu0", "host0")
        config = mcs.export_configuration("falcon0")
        mcs.detach("admin", "gpu0")
        mcs.import_configuration("admin", "falcon0", config)
        assert falcon.owner_of("gpu0") == "host0"

    def test_import_requires_admin(self, setup):
        mcs, _, _ = setup
        mcs.create_user("admin", "alice")
        config = mcs.export_configuration("falcon0")
        with pytest.raises(PermissionError_):
            mcs.import_configuration("alice", "falcon0", config)

    def test_health_report(self, setup):
        mcs, _, _ = setup
        report = mcs.health("falcon0")
        assert "sensors" in report
        assert len(report["sensors"]) == 2  # one inlet per drawer

    def test_chassis_events_flow_into_log(self, setup):
        mcs, falcon, topo = setup
        topo.add_node("gpuX", kind="gpu")
        falcon.install_device("gpuX", drawer=1)
        assert mcs.log.query(kind="device_installed")

    def test_double_falcon_registration_rejected(self, setup, env):
        mcs, falcon, _ = setup
        with pytest.raises(ValueError):
            mcs.register_falcon(falcon)

    def test_double_host_registration_rejected(self, setup):
        mcs, _, _ = setup
        with pytest.raises(ValueError):
            mcs.register_host("host0")
