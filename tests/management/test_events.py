"""Unit tests for the audit event log."""

import pytest

from repro.management import EventLog


class TestEventLog:
    def test_record_and_len(self):
        log = EventLog()
        log.record(1.0, "attach", "alice", device="gpu0")
        log.record(2.0, "detach", "alice", device="gpu0")
        assert len(log) == 2

    def test_query_by_kind(self):
        log = EventLog()
        log.record(1.0, "attach", "alice")
        log.record(2.0, "detach", "alice")
        log.record(3.0, "attach", "bob")
        attaches = log.query(kind="attach")
        assert len(attaches) == 2
        assert {e.actor for e in attaches} == {"alice", "bob"}

    def test_query_by_actor_and_since(self):
        log = EventLog()
        for t in range(5):
            log.record(float(t), "tick", "alice" if t % 2 else "bob")
        assert len(log.query(actor="alice")) == 2
        assert len(log.query(since=3.0)) == 2
        assert len(log.query(actor="bob", since=3.0)) == 1

    def test_export_roundtrip(self):
        import json
        log = EventLog()
        log.record(1.5, "attach", "alice", device="gpu0", host="host0")
        blob = json.dumps(log.export())
        data = json.loads(blob)
        assert data[0]["kind"] == "attach"
        assert data[0]["details"]["device"] == "gpu0"

    def test_capacity_evicts_oldest(self):
        log = EventLog(capacity=3)
        for t in range(5):
            log.record(float(t), f"e{t}")
        assert len(log) == 3
        assert log.tail(1)[0].kind == "e4"
        assert log.export()[0]["kind"] == "e2"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_subscribe(self):
        log = EventLog()
        seen = []
        log.subscribe(lambda e: seen.append(e.kind))
        log.record(0.0, "boom")
        assert seen == ["boom"]

    def test_tail(self):
        log = EventLog()
        for t in range(10):
            log.record(float(t), f"e{t}")
        assert [e.kind for e in log.tail(3)] == ["e7", "e8", "e9"]
