"""Unit tests for the BMC thermal/link-health monitor."""

import pytest

from repro.management import BMC, EventLog
from repro.management.bmc import AMBIENT_C
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def bmc(env):
    return BMC(env, "bmc0", EventLog(), sample_interval=5.0)


class TestSensors:
    def test_add_sensor(self, bmc):
        sensor = bmc.add_sensor("drawer0/inlet")
        assert sensor.value == AMBIENT_C
        with pytest.raises(ValueError):
            bmc.add_sensor("drawer0/inlet")

    def test_temperature_rises_under_load(self, env, bmc):
        bmc.add_sensor("inlet")
        bmc.set_load_source(lambda: 1.0)
        bmc.start()
        env.run(until=300.0)
        assert bmc.sensors["inlet"].value > 50.0
        # History recorded.
        assert len(bmc.temperature_history["inlet"]) > 10

    def test_idle_stays_ambient(self, env, bmc):
        bmc.add_sensor("inlet")
        bmc.set_load_source(lambda: 0.0)
        bmc.start()
        env.run(until=100.0)
        assert bmc.sensors["inlet"].value == pytest.approx(AMBIENT_C,
                                                           abs=1.0)

    def test_threshold_alert_and_clear(self, env):
        log = EventLog()
        bmc = BMC(env, "bmc0", log, sample_interval=5.0)
        bmc.add_sensor("inlet", threshold=40.0)
        load = {"value": 1.0}
        bmc.set_load_source(lambda: load["value"])
        bmc.start()
        env.run(until=300.0)
        alerts = log.query(kind="temperature_alert")
        assert len(alerts) == 1
        # Cool down: alert clears.
        load["value"] = 0.0
        env.run(until=900.0)
        assert log.query(kind="temperature_cleared")

    def test_fan_ramps_with_heat(self, env, bmc):
        bmc.add_sensor("inlet")
        bmc.set_load_source(lambda: 1.0)
        bmc.start()
        env.run(until=300.0)
        assert bmc.fan_speed_pct > 35.0

    def test_invalid_interval(self, env):
        with pytest.raises(ValueError):
            BMC(env, "b", EventLog(), sample_interval=0.0)


class TestLinkHealth:
    def test_track_and_errors(self, env):
        log = EventLog()
        bmc = BMC(env, "bmc0", log)
        health = bmc.track_link("H1")
        assert health.healthy
        bmc.record_link_error("H1", correctable=True)
        assert health.correctable_errors == 1
        assert health.healthy
        bmc.record_link_error("H1", correctable=False)
        assert not health.healthy
        assert log.query(kind="link_error")

    def test_unknown_link(self, env):
        bmc = BMC(env, "bmc0", EventLog())
        with pytest.raises(KeyError):
            bmc.record_link_error("H9")

    def test_double_track_rejected(self, env):
        bmc = BMC(env, "bmc0", EventLog())
        bmc.track_link("H1")
        with pytest.raises(ValueError):
            bmc.track_link("H1")

    def test_health_report_shape(self, env):
        bmc = BMC(env, "bmc0", EventLog())
        bmc.add_sensor("inlet")
        bmc.track_link("H1")
        report = bmc.health_report()
        assert "fan_speed_pct" in report
        assert report["sensors"]["inlet"] == pytest.approx(AMBIENT_C)
        assert report["links"]["H1"]["healthy"]
