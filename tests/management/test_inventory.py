"""Inventory hot-plug semantics: contention naming, idempotent release."""

import pytest

from repro.core import ComposableSystem
from repro.management.inventory import InventoryError


@pytest.fixture
def system():
    return ComposableSystem()


class TestAttach:
    def test_contended_attach_names_the_owner(self, system):
        # Chassis GPUs start allocated to host0; a second tenant racing
        # for one must learn who holds it to decide retry vs abandon.
        with pytest.raises(InventoryError,
                           match=r"held by 'host0'.*'tenant'"):
            system.inventory.attach("falcon0/gpu0", "tenant")

    def test_attach_is_idempotent_per_owner(self, system):
        owner = system.falcon.owner_of("falcon0/gpu0")
        system.inventory.attach("falcon0/gpu0", owner)  # no-op, no raise
        assert system.falcon.owner_of("falcon0/gpu0") == owner

    def test_attach_claims_a_free_device(self, system):
        system.inventory.detach("falcon0/gpu0")
        system.inventory.attach("falcon0/gpu0", "host0")
        assert system.falcon.owner_of("falcon0/gpu0") == "host0"

    def test_unmanaged_device_is_rejected(self, system):
        with pytest.raises(InventoryError, match="not inventory-managed"):
            system.inventory.attach("nonexistent/gpu9", "host0")


class TestDetach:
    def test_detach_releases_to_the_spare_pool(self, system):
        assert system.inventory.spare_gpus() == []
        system.inventory.detach("falcon0/gpu0")
        assert [g.name for g in system.inventory.spare_gpus()] \
            == ["falcon0/gpu0"]

    def test_detach_is_idempotent(self, system):
        system.inventory.detach("falcon0/gpu0")
        system.inventory.detach("falcon0/gpu0")  # second release: no-op
        assert system.falcon.owner_of("falcon0/gpu0") is None

    def test_unmanaged_device_is_rejected(self, system):
        with pytest.raises(InventoryError, match="not inventory-managed"):
            system.inventory.detach("nonexistent/gpu9")


class TestReplace:
    def test_replace_without_spare_raises(self, system):
        with pytest.raises(InventoryError, match="no spare"):
            system.inventory.replace_gpu("falcon0/gpu0", "host0")

    def test_replace_swaps_in_the_spare(self, system):
        spare = system.install_spare_gpu(drawer=0)
        got = system.inventory.replace_gpu("falcon0/gpu0", "host0")
        assert got.name == spare.name
        assert system.falcon.owner_of(spare.name) == "host0"
        assert system.falcon.owner_of("falcon0/gpu0") is None
