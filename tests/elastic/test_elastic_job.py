"""Elastic runtime: safe-point resizes, batch invariance, edge cases."""

import pytest

from repro.chaos import FaultEvent, FaultInjector
from repro.core import ComposableSystem
from repro.elastic import ElasticTrainingJob, ResizeSignal, VirtualBatchSpec
from repro.management.inventory import InventoryError
from repro.training import ResilienceConfig, TrainingConfig
from repro.workloads import get_benchmark


def small_config(**overrides):
    defaults = dict(benchmark=get_benchmark("resnet50"), global_batch=8,
                    sim_steps=6, sim_checkpoints=0,
                    checkpoint_interval_steps=2)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def make_elastic(system, gpus, virtual_nodes, config=None, **overrides):
    kwargs = dict(
        resilience=ResilienceConfig(backoff_initial=0.05,
                                    reattach_attempts=2),
        inventory=system.inventory,
        event_log=system.mcs.log,
        virtual_batch=VirtualBatchSpec(virtual_nodes, 8))
    kwargs.update(overrides)
    return ElasticTrainingJob(system.env, system.topology, system.host,
                              gpus, system.host.scratch,
                              config or small_config(), **kwargs)


def request_at_step(ft, at_step, kind, targets=()):
    """Latch a resize request at one global-step boundary, once."""
    fired = {}
    total = ft.config.sim_steps

    def arm(job, attempt):
        def on_step(steps_done, now):
            gstep = total - job.config.sim_steps + steps_done
            if gstep == at_step and "done" not in fired:
                fired["done"] = True
                ft.request_resize(kind, targets)
        job.add_step_listener(on_step)

    ft.on_attempt.append(arm)


def test_resize_signal_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="resize kind"):
        ResizeSignal("explode")


def test_initial_world_must_divide_virtual_nodes():
    system = ComposableSystem()
    with pytest.raises(ValueError, match="does not divide"):
        make_elastic(system, system.falcon_gpus[:2], virtual_nodes=1)


def test_virtual_batch_must_match_config_batch():
    system = ComposableSystem()
    with pytest.raises(ValueError, match="global batch"):
        make_elastic(system, system.falcon_gpus[:4], virtual_nodes=4,
                     virtual_batch=VirtualBatchSpec(4, 16))


@pytest.mark.chaos
class TestScheduledResizes:
    def test_shrink_then_grow_keeps_effective_batch_every_step(self):
        # The acceptance property: one shrink and one grow, and every
        # optimizer step in the ledger trained the same global batch.
        system = ComposableSystem()
        ft = make_elastic(system, system.falcon_gpus[:4], virtual_nodes=4)
        # A request latched at boundary k is polled at boundary k+1 (the
        # runtime's poll precedes the test's latch listener).
        request_at_step(ft, 1, "shrink", (ft.gpus[-1].name,))
        request_at_step(ft, 3, "grow")
        result = ft.run()

        assert result.completed
        assert result.faults == 0
        assert result.resizes == 2
        assert result.lost_steps == 0  # safe points lose no work
        assert [e.kind for e in result.resize_log] == ["shrink", "grow"]
        steps = [s for s, _, _ in ft.step_ledger]
        assert steps == list(range(1, 7))  # every step, exactly once
        worlds = [w for _, w, _ in ft.step_ledger]
        assert worlds == [4, 4, 2, 2, 4, 4]
        batches = {b for _, _, b in ft.step_ledger}
        assert batches == {8}  # the invariant, asserted per-step

    def test_shrink_snaps_to_feasible_world_and_parks_the_odd_gpu(self):
        # Dropping one member of a 4-ring leaves 3 GPUs, but 3 does not
        # divide V=4: the runtime keeps 2 and parks the third.
        system = ComposableSystem()
        ft = make_elastic(system, system.falcon_gpus[:4], virtual_nodes=4)
        request_at_step(ft, 2, "shrink", (ft.gpus[-1].name,))
        result = ft.run()

        assert result.completed
        assert result.final_world_size == 2
        kinds = [a.kind for a in result.recovery_log]
        assert "gpu_parked" in kinds
        parked = result.resize_log[0].parked
        assert len(parked) == 1
        # Parked back to the spare pool, claimable by a later grow.
        assert system.falcon.owner_of(parked[0]) is None

    def test_shrink_to_world_one(self):
        system = ComposableSystem()
        ft = make_elastic(system, system.falcon_gpus[:2], virtual_nodes=2,
                          config=small_config(sim_steps=4))
        request_at_step(ft, 1, "shrink", (ft.gpus[-1].name,))
        result = ft.run()

        assert result.completed
        assert result.final_world_size == 1
        assert [w for _, w, _ in ft.step_ledger] == [2, 2, 1, 1]
        assert {b for _, _, b in ft.step_ledger} == {8}
        # A lone rank still runs a valid (rendezvous-only) reshard.
        assert result.resize_log[0].reshard_bytes == 0.0

    def test_shrink_away_everything_gives_up_with_a_reason(self):
        system = ComposableSystem()
        ft = make_elastic(system, system.falcon_gpus[:2], virtual_nodes=2,
                          config=small_config(sim_steps=4))
        request_at_step(ft, 2, "shrink",
                        tuple(g.name for g in ft.gpus))
        result = ft.run()

        assert not result.completed
        assert "empty the ring" in result.interrupted_reason


@pytest.mark.chaos
class TestSafePointDeferral:
    def test_mid_step_request_defers_to_the_next_boundary(self):
        # A request arriving while a step's collectives are in flight
        # must not preempt them: the resize lands at the boundary and
        # the in-flight step completes and counts.
        system = ComposableSystem()
        for name in ("falcon0/gpu2", "falcon0/gpu3"):
            system.inventory.detach(name)
        ft = make_elastic(system, system.falcon_gpus[:2], virtual_nodes=4)

        def arm(job, attempt):
            if attempt != 1:
                return

            def on_step(steps_done, now):
                if steps_done == 1:
                    def later():
                        yield system.env.timeout(1e-6)  # mid-step 2
                        ft.request_resize("grow")
                    system.env.process(later())

            job.add_step_listener(on_step)

        ft.on_attempt.append(arm)
        result = ft.run()

        assert result.completed
        assert result.lost_steps == 0
        requested = [a for a in result.recovery_log
                     if a.kind == "resize_requested"]
        # Step 2 ran to completion before the resize took effect.
        assert requested[0].detail["steps_completed"] == 2
        assert [w for _, w, _ in ft.step_ledger] == [2, 2, 4, 4, 4, 4]
        assert {b for _, _, b in ft.step_ledger} == {8}

    def test_resize_during_checkpoint_write_keeps_the_checkpoint(self):
        # The request lands while the step-2 checkpoint is streaming to
        # scratch: the write must complete (durable) and the resize
        # defers to the *next* boundary.
        system = ComposableSystem()
        for name in ("falcon0/gpu2", "falcon0/gpu3"):
            system.inventory.detach(name)
        ft = make_elastic(system, system.falcon_gpus[:2], virtual_nodes=4)
        checkpoints = []
        request_time = {}

        def arm(job, attempt):
            job.add_checkpoint_listener(
                lambda step, now: checkpoints.append((step, now)))
            if attempt != 1:
                return

            def on_step(steps_done, now):
                if steps_done == 2:  # fires before the checkpoint starts
                    def mid_write():
                        yield system.env.timeout(1e-6)
                        request_time["t"] = system.env.now
                        ft.request_resize("grow")
                    system.env.process(mid_write())

            job.add_step_listener(on_step)

        ft.on_attempt.append(arm)
        result = ft.run()

        assert result.completed
        # The step-2 checkpoint (index 1) landed despite the request...
        ck_steps = [step for step, _ in checkpoints]
        assert 1 in ck_steps
        ck_time = next(t for step, t in checkpoints if step == 1)
        # ...which provably arrived while the write was in flight...
        assert request_time["t"] < ck_time
        # ...and the resize waited for the step-3 boundary.
        requested = [a for a in result.recovery_log
                     if a.kind == "resize_requested"]
        assert requested[0].detail["steps_completed"] == 3
        assert result.resize_log[0].time >= ck_time
        assert [w for _, w, _ in ft.step_ledger] == [2, 2, 2, 4, 4, 4]


@pytest.mark.chaos
class TestGrowContention:
    def setup_grow(self, system):
        for name in ("falcon0/gpu2", "falcon0/gpu3"):
            system.inventory.detach(name)
        ft = make_elastic(system, system.falcon_gpus[:2], virtual_nodes=4)
        request_at_step(ft, 2, "grow")
        return ft

    def test_contended_spare_backs_off_and_retries(self, monkeypatch):
        system = ComposableSystem()
        ft = self.setup_grow(system)
        real_attach = system.inventory.attach
        calls = {"n": 0}

        def flaky_attach(name, host_id):
            calls["n"] += 1
            if calls["n"] == 1:  # lost the first claim race
                raise InventoryError(
                    f"{name!r} is already held by 'tenant-b'; "
                    f"cannot attach to {host_id!r}")
            return real_attach(name, host_id)

        monkeypatch.setattr(system.inventory, "attach", flaky_attach)
        result = ft.run()

        assert result.completed
        assert result.final_world_size == 4
        contended = [a for a in result.recovery_log
                     if a.kind == "inventory_contended"]
        assert len(contended) == 1
        assert "tenant-b" in contended[0].detail["reason"]
        assert "grow_abandoned" not in [a.kind for a in result.recovery_log]

    def test_exhausted_contention_abandons_the_grow(self, monkeypatch):
        system = ComposableSystem()
        ft = self.setup_grow(system)

        def always_contended(name, host_id):
            raise InventoryError(
                f"{name!r} is already held by 'tenant-b'; "
                f"cannot attach to {host_id!r}")

        monkeypatch.setattr(system.inventory, "attach", always_contended)
        result = ft.run()

        # The grow bought nothing, but the job keeps training.
        assert result.completed
        assert result.final_world_size == 2
        abandoned = [a for a in result.recovery_log
                     if a.kind == "grow_abandoned"]
        assert abandoned[0].detail["reason"] == "inventory contended"
        assert {b for _, _, b in ft.step_ledger} == {8}

    def test_inadmissible_lone_spare_abandons_before_claiming(self):
        # One free GPU cannot take a 2-ring to a feasible world (3 does
        # not divide V=4): the grow is abandoned without any claim.
        system = ComposableSystem()
        system.inventory.detach("falcon0/gpu2")
        ft = make_elastic(system, system.falcon_gpus[:2], virtual_nodes=4)
        request_at_step(ft, 2, "grow")
        result = ft.run()

        assert result.completed
        assert result.final_world_size == 2
        abandoned = [a for a in result.recovery_log
                     if a.kind == "grow_abandoned"]
        assert abandoned[0].detail["reason"] == "no feasible larger world"
        assert system.falcon.owner_of("falcon0/gpu2") is None


@pytest.mark.chaos
class TestFaultDrivenShrink:
    def test_replicated_fault_recovers_live_state_without_rollback(self):
        # A real GPU loss on a replicated strategy: survivors hold full
        # state, so the elastic runtime resumes from the last completed
        # step instead of the last checkpoint.
        system = ComposableSystem()
        injector = FaultInjector(system.env, system.topology,
                                 falcon=system.falcon,
                                 event_log=system.mcs.log)
        ft = make_elastic(
            system, system.falcon_gpus[:4], virtual_nodes=4,
            resilience=ResilienceConfig(backoff_initial=0.05,
                                        reattach_attempts=2,
                                        allow_hot_spare=False))
        fired = {}

        def arm(job, attempt):
            def on_step(steps_done, now):
                gstep = ft.config.sim_steps - job.config.sim_steps \
                    + steps_done
                if gstep == 3 and "done" not in fired:
                    fired["done"] = True
                    injector.apply(FaultEvent(now, "gpu_drop",
                                              "node:falcon0/gpu1"))
            job.add_step_listener(on_step)

        ft.on_attempt.append(arm)
        result = ft.run()

        assert result.completed
        assert result.faults == 1
        assert result.final_world_size == 2
        assert result.lost_steps == 0  # no checkpoint rollback
        kinds = [a.kind for a in result.recovery_log]
        assert "live_state_recovered" in kinds
        assert "checkpoint_rollback" not in kinds
        assert {b for _, _, b in ft.step_ledger} == {8}
        assert result.resize_log[0].kind == "shrink"
