"""Autoscaling policies: eager vs hysteresis grow decisions."""

import pytest

from repro.elastic import AutoscalePolicy, EagerGrowPolicy, HysteresisPolicy


def observe_series(policy, spares):
    return [policy.observe(float(i), i, 2, s)
            for i, s in enumerate(spares)]


def test_static_policy_never_grows():
    assert observe_series(AutoscalePolicy(), [0, 1, 5, 1]) == [None] * 4


def test_eager_fires_the_moment_a_spare_appears():
    assert observe_series(EagerGrowPolicy(), [0, 1, 0, 2]) \
        == [None, "grow", None, "grow"]


class TestHysteresis:
    def test_requires_hold_consecutive_sightings(self):
        policy = HysteresisPolicy(hold=3, cooldown=0)
        assert observe_series(policy, [1, 1, 1]) == [None, None, "grow"]

    def test_streak_resets_when_spares_vanish(self):
        policy = HysteresisPolicy(hold=2, cooldown=0)
        # The blip at step 2 restarts the count.
        assert observe_series(policy, [1, 0, 1, 1]) \
            == [None, None, None, "grow"]

    def test_cooldown_suppresses_back_to_back_grows(self):
        policy = HysteresisPolicy(hold=1, cooldown=2)
        # Fires, then sits out two observations, then fires again.
        assert observe_series(policy, [1, 1, 1, 1]) \
            == ["grow", None, None, "grow"]

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            HysteresisPolicy(hold=0)
        with pytest.raises(ValueError):
            HysteresisPolicy(hold=1, cooldown=-1)
