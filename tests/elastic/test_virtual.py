"""Virtual-node batch semantics: the resize-invariant decomposition."""

import pytest

from repro.elastic import VirtualBatchSpec
from repro.training import TrainingConfig
from repro.workloads import get_benchmark


class TestValidation:
    def test_global_batch_must_be_multiple_of_virtual_nodes(self):
        with pytest.raises(ValueError, match="multiple of virtual_nodes"):
            VirtualBatchSpec(4, 10)

    def test_virtual_nodes_must_be_positive(self):
        with pytest.raises(ValueError, match="virtual_nodes"):
            VirtualBatchSpec(0, 8)

    def test_accumulation_must_divide_per_vnode_batch(self):
        with pytest.raises(ValueError, match="not divisible"):
            VirtualBatchSpec(2, 8, base_accumulation=3)

    def test_accumulation_must_be_positive(self):
        with pytest.raises(ValueError, match="base_accumulation"):
            VirtualBatchSpec(2, 8, base_accumulation=0)


class TestInvariants:
    def test_global_batch_constant_across_every_feasible_world(self):
        spec = VirtualBatchSpec(8, 64, base_accumulation=2)
        for world in (1, 2, 4, 8):
            assert spec.config_overrides(world)["global_batch"] == 64

    def test_micro_batch_constant_across_every_feasible_world(self):
        # The micro-batch (kernel shapes, activation memory) must not
        # change on resize: G / (world * accumulation) is invariant.
        spec = VirtualBatchSpec(8, 64, base_accumulation=2)
        for world in (1, 2, 4, 8):
            ov = spec.config_overrides(world)
            micro = ov["global_batch"] // (world * ov["accumulation_steps"])
            assert micro == spec.micro_batch == 4

    def test_accumulation_scales_inversely_with_world(self):
        spec = VirtualBatchSpec(4, 8)
        assert spec.config_overrides(4)["accumulation_steps"] == 1
        assert spec.config_overrides(2)["accumulation_steps"] == 2
        assert spec.config_overrides(1)["accumulation_steps"] == 4


class TestFeasibleWorld:
    def test_snaps_down_to_the_largest_divisor(self):
        spec = VirtualBatchSpec(4, 8)
        assert [spec.feasible_world(n) for n in range(7)] \
            == [0, 1, 2, 2, 4, 4, 4]

    def test_never_exceeds_the_virtual_node_count(self):
        assert VirtualBatchSpec(2, 8).feasible_world(16) == 2

    def test_overrides_reject_a_non_divisor_world(self):
        with pytest.raises(ValueError, match="feasible_world"):
            VirtualBatchSpec(4, 8).config_overrides(3)


def test_for_config_matches_the_resolved_global_batch():
    config = TrainingConfig(benchmark=get_benchmark("resnet50"),
                            global_batch=8)
    spec = VirtualBatchSpec.for_config(config, virtual_nodes=4)
    assert spec.global_batch == config.resolved_global_batch()
    assert spec.virtual_nodes == 4
