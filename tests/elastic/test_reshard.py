"""State-redistribution plans: validation, conformance, equivalence.

The reshard plan is ordinary plan IR, so it must satisfy everything any
plan does: pass the validator, survive every optimizing pass without
changing its communication contract, and time identically on the fast
path and the real executor — including when spliced in front of a real
compiled training step (how the elastic runtime actually runs it).
"""

import math

import pytest

from repro.core import ComposableSystem
from repro.devices.gpu import Precision
from repro.plan import (
    Barrier,
    Collective,
    ExecutionContext,
    P2PCopy,
    PlanBuilder,
    PlanError,
    compile_reshard,
    evaluate_plan,
    splice_plans,
    validate_plan,
)
from repro.plan.passes import (
    PASS_REGISTRY,
    PassContext,
    PassManager,
    resolve_passes,
)
from repro.plan.reshard import is_rendezvous_only
from repro.training import TrainingConfig, TrainingJob
from repro.training.collectives import Communicator
from repro.workloads import get_benchmark

NAMES = ["falcon0/gpu0", "falcon0/gpu1", "falcon0/gpu2", "falcon0/gpu3"]
REPLICA = 2e8
SHARD = 5e7


class TestCompileReshard:
    def test_empty_new_ring_rejected(self):
        with pytest.raises(PlanError, match="non-empty"):
            compile_reshard([], NAMES, REPLICA)

    def test_duplicate_members_rejected(self):
        with pytest.raises(PlanError, match="duplicate"):
            compile_reshard([NAMES[0], NAMES[0]], NAMES, REPLICA)

    def test_no_survivors_is_a_plan_error(self):
        # A fully new ring has no live state source; the runtime must
        # restore from checkpoint instead of resharding.
        with pytest.raises(PlanError, match="surviving"):
            compile_reshard(NAMES[:2], ["elsewhere/gpu0"], REPLICA)

    def test_grow_round_robins_replica_donors(self):
        plan = compile_reshard(NAMES, NAMES[:2], REPLICA)
        copies = [op for op in plan if isinstance(op, P2PCopy)]
        assert len(copies) == 2  # one restore per joiner
        assert {op.rank for op in copies} == {0, 1}  # both donors used
        assert {op.dst_rank for op in copies} == {2, 3}
        assert all(op.bytes == REPLICA for op in copies)
        assert plan.meta["joined"] == NAMES[2:]
        assert plan.meta["conservation"]["replica-state"] \
            == pytest.approx(2 * REPLICA)

    def test_shrink_is_pure_rendezvous(self):
        # Survivors already hold replicas: an N-1 shrink moves no bytes,
        # only the exit barrier quiesces the new ring.
        plan = compile_reshard(NAMES[:2], NAMES, REPLICA)
        assert is_rendezvous_only(plan)
        assert all(isinstance(op, Barrier) for op in plan)
        assert plan.meta["departed"] == NAMES[2:]

    def test_sharded_resize_regathers_the_partition(self):
        plan = compile_reshard(NAMES, NAMES[:3], REPLICA, SHARD)
        gathers = [op for op in plan if isinstance(op, Collective)]
        assert len(gathers) == len(NAMES)
        assert all(op.comm == "all_gather" and op.bytes == SHARD
                   for op in gathers)
        assert not is_rendezvous_only(plan)

    def test_hot_spare_swap_is_a_one_joiner_reshard(self):
        swapped = NAMES[:3] + ["falcon0/gpu8"]
        plan = compile_reshard(swapped, NAMES, REPLICA)
        copies = [op for op in plan if isinstance(op, P2PCopy)]
        assert len(copies) == 1
        assert plan.meta["joined"] == ["falcon0/gpu8"]

    def test_every_rank_ends_at_the_exit_barrier(self):
        plan = compile_reshard(NAMES, NAMES[:1], REPLICA, SHARD)
        for rank in range(plan.world_size):
            assert isinstance(plan.by_rank(rank)[-1], Barrier)


def _step_like_plan(world=4):
    """A miniature strategy-compiler-shaped plan to splice after."""
    b = PlanBuilder("ministep", world)
    for rank in range(world):
        inp = b.h2d(rank, "input", 1e6, label="input")
        grad = b.collective(rank, "gradients", "allreduce", 4e6,
                            deps=[inp], payload="gradients")
        b.compute(rank, "opt", flops=1e8, hbm_bytes=1e5,
                  precision=Precision.FP32, efficiency=0.5, deps=[grad])
    b.declare_conservation("gradients", world * 4e6)
    return b.build()


class TestSplice:
    def test_world_size_mismatch_rejected(self):
        reshard = compile_reshard(NAMES[:2], NAMES, REPLICA)
        with pytest.raises(PlanError, match="splice"):
            splice_plans(reshard, _step_like_plan(world=4))

    def test_second_plan_roots_anchor_on_the_exit_barriers(self):
        reshard = compile_reshard(NAMES, NAMES[:2], REPLICA)
        step = _step_like_plan()
        spliced = splice_plans(reshard, step)
        assert validate_plan(spliced) == []
        exits = {op.uid for op in spliced
                 if isinstance(op, Barrier) and "exit" in op.uid}
        by_uid = {op.uid: op for op in spliced}
        for op in step:
            if op.deps:
                continue  # non-roots keep their in-plan deps
            moved = by_uid[op.uid]
            assert len(moved.deps) == 1
            assert moved.deps[0] in exits
        # No step op may start before its rank's state landed.
        assert len(spliced) == len(reshard) + len(step)

    def test_colliding_uids_are_suffixed_and_deps_remapped(self):
        first = compile_reshard(NAMES[:2], NAMES, REPLICA)
        second = compile_reshard(NAMES[:2], NAMES, REPLICA)
        spliced = splice_plans(first, second)
        assert validate_plan(spliced) == []
        uids = [op.uid for op in spliced]
        assert len(uids) == len(set(uids))
        assert any(uid.endswith("+s") for uid in uids)

    def test_conservation_merges_across_the_splice(self):
        reshard = compile_reshard(NAMES, NAMES[:2], REPLICA, SHARD)
        spliced = splice_plans(reshard, _step_like_plan())
        totals = spliced.meta["conservation"]
        assert totals["replica-state"] == pytest.approx(2 * REPLICA)
        assert totals["shard-state"] == pytest.approx(4 * SHARD)
        assert totals["gradients"] == pytest.approx(16e6)


# -- pass conformance --------------------------------------------------------

def _payload_totals(plan):
    totals = {}
    for op in plan:
        payload = getattr(op, "payload", None)
        if payload is not None:
            totals[payload] = totals.get(payload, 0.0) + op.bytes
    return totals


def _sync_seq(plan, rank):
    seq = []
    for op in plan.by_rank(rank):
        if isinstance(op, Collective):
            seq.extend([(op.comm, op.root, op.payload)]
                       * max(1, op.fused))
        elif isinstance(op, Barrier):
            seq.append(("barrier", None, None))
    return seq


def _assert_conformant(before, after):
    assert validate_plan(after) == []
    b_totals, a_totals = _payload_totals(before), _payload_totals(after)
    assert set(b_totals) == set(a_totals)
    for payload, total in b_totals.items():
        assert math.isclose(a_totals[payload], total, rel_tol=1e-9)
    for rank in range(before.world_size):
        assert _sync_seq(after, rank) == _sync_seq(before, rank)


def _reshard_variants():
    return {
        "grow": compile_reshard(NAMES, NAMES[:2], REPLICA),
        "shrink": compile_reshard(NAMES[:2], NAMES, REPLICA),
        "sharded": compile_reshard(NAMES, NAMES[:3], REPLICA, SHARD),
        "spliced": splice_plans(
            compile_reshard(NAMES, NAMES[:2], REPLICA, SHARD),
            _step_like_plan()),
    }


@pytest.mark.parametrize("pass_name", sorted(PASS_REGISTRY))
@pytest.mark.parametrize("variant", sorted(_reshard_variants()))
def test_every_pass_preserves_the_reshard_contract(pass_name, variant):
    plan = _reshard_variants()[variant]
    out = PASS_REGISTRY[pass_name]().run(plan, PassContext())
    _assert_conformant(plan, out)


@pytest.mark.parametrize("variant", sorted(_reshard_variants()))
def test_full_pipeline_conformant_on_reshard_plans(variant):
    plan = _reshard_variants()[variant]
    out = PassManager(resolve_passes("all")).run(plan, PassContext())
    _assert_conformant(plan, out)


# -- engine equivalence ------------------------------------------------------

def _ctx(system, gpus):
    comm = Communicator(system.env, system.topology,
                        [g.name for g in gpus], gpus=list(gpus))
    return ExecutionContext(env=system.env, comm=comm, gpus=list(gpus),
                            topology=system.topology,
                            host_node=system.host.dram_node,
                            storage=system.host.scratch)


class TestEngineEquivalence:
    def test_grow_reshard_times_identically_on_both_engines(self):
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        names = [g.name for g in gpus]
        plan = compile_reshard(names, names[:2], REPLICA, SHARD)
        timing = evaluate_plan(plan, _ctx(system, gpus),
                               assert_equivalence=True)
        assert timing.makespan > 0

    def test_reshard_spliced_step_plan_times_identically(self):
        # The shape the elastic runtime actually executes: the resize's
        # state redistribution fused in front of the new ring's first
        # compiled training step.
        system = ComposableSystem()
        gpus = system.falcon_gpus[:4]
        names = [g.name for g in gpus]
        config = TrainingConfig(benchmark=get_benchmark("resnet50"),
                                global_batch=8, sim_steps=2,
                                sim_checkpoints=0)
        job = TrainingJob(system.env, system.topology, system.host,
                          gpus, system.host.scratch, config)
        spliced = splice_plans(
            compile_reshard(names, names[:2], REPLICA), job.step_plan)
        timing = evaluate_plan(spliced, _ctx(system, gpus),
                               assert_equivalence=True)
        assert timing.makespan \
            > evaluate_plan(job.step_plan, _ctx(system, gpus)).makespan
