"""Tests for the experiment runner, exporters, table renderer, and
resilience study."""

import json

import pytest

from repro.experiments import (
    degraded_uplink_study,
    format_value,
    record_to_dict,
    records_to_csv,
    records_to_json,
    render_table,
    run_configuration,
    write_records,
)


@pytest.fixture(scope="module")
def record():
    return run_configuration("resnet50", "falconGPUs", sim_steps=6)


class TestRunner:
    def test_record_fields(self, record):
        assert record.benchmark == "resnet50"
        assert record.configuration == "falconGPUs"
        assert record.step_time > 0
        assert record.throughput > 0
        assert 0 <= record.gpu_utilization <= 100
        assert record.falcon_gpu_traffic_gbs > 0

    def test_pct_change_identity(self, record):
        assert record.pct_change_vs(record) == pytest.approx(0.0)


class TestExport:
    def test_record_to_dict_scalars_only(self, record):
        data = record_to_dict(record)
        assert data["benchmark"] == "resnet50"
        assert all(isinstance(v, (int, float, str))
                   for v in data.values())
        assert "result" not in data

    def test_json_roundtrip(self, record):
        blob = records_to_json([record, record])
        parsed = json.loads(blob)
        assert len(parsed) == 2
        assert parsed[0]["configuration"] == "falconGPUs"

    def test_csv_header_and_rows(self, record):
        text = records_to_csv([record])
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("benchmark,configuration")

    def test_write_records_json(self, record, tmp_path):
        path = write_records([record], tmp_path / "out.json")
        assert json.loads(path.read_text())[0]["benchmark"] == "resnet50"

    def test_write_records_csv(self, record, tmp_path):
        path = write_records([record], tmp_path / "out.csv")
        assert "resnet50" in path.read_text()

    def test_write_records_bad_suffix(self, record, tmp_path):
        with pytest.raises(ValueError):
            write_records([record], tmp_path / "out.xlsx")


class TestTables:
    def test_render_alignment(self):
        text = render_table(["a", "bb"], [(1, 2.5), ("xx", None)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [(1, 2)])

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(1234.5) == "1,234"
        assert format_value(12.34) == "12.3"
        assert format_value(0.1234) == "0.123"
        assert format_value(1e-6) == "1.00e-06"
        assert format_value(0) == "0"
        assert format_value("s") == "s"


class TestResilience:
    def test_degraded_uplink_slows_falcon_training(self):
        result = degraded_uplink_study(benchmark="bert-large",
                                       configuration="falconGPUs",
                                       lanes=8, sim_steps=8)
        assert result.slowdown_pct > 20.0

    def test_local_training_unaffected(self):
        result = degraded_uplink_study(benchmark="bert-large",
                                       configuration="localGPUs",
                                       lanes=8, sim_steps=8)
        assert abs(result.slowdown_pct) < 2.0
