"""Tests for kernel jitter and straggler amplification."""

import pytest

from repro import ComposableSystem
from repro.experiments import straggler_amplification_study
from repro.training import AMP_POLICY, StepCosts
from repro.workloads import get_benchmark


class TestJitterPrimitive:
    def make_costs(self, jitter, seed=7):
        b = get_benchmark("bert-large")
        return StepCosts.for_benchmark(b.build(), AMP_POLICY, 0.22, 6,
                                       jitter=jitter, seed=seed)

    def test_zero_jitter_is_exactly_one(self):
        costs = self.make_costs(0.0)
        assert all(costs.jitter_factor() == 1.0 for _ in range(5))

    def test_jitter_samples_vary_positively(self):
        costs = self.make_costs(0.2)
        samples = [costs.jitter_factor() for _ in range(50)]
        assert all(s > 0 for s in samples)
        assert len(set(samples)) > 40

    def test_seeded_reproducibility(self):
        a = self.make_costs(0.2, seed=42)
        b = self.make_costs(0.2, seed=42)
        assert [a.jitter_factor() for _ in range(10)] == \
            [b.jitter_factor() for _ in range(10)]

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            self.make_costs(-0.1)


class TestJitteredTraining:
    def test_jittered_run_reproducible_at_fixed_seed(self):
        steps = []
        for _ in range(2):
            system = ComposableSystem()
            r = system.train("bert-base", sim_steps=5,
                             kernel_jitter=0.1, jitter_seed=123)
            steps.append(r.step_time)
        assert steps[0] == steps[1]

    def test_jitter_raises_step_variance(self):
        system = ComposableSystem()
        det = system.train("bert-base", sim_steps=6)
        system = ComposableSystem()
        jit = system.train("bert-base", sim_steps=6, kernel_jitter=0.15)
        assert jit.step_time_std > det.step_time_std


class TestAmplification:
    def test_amplification_grows_with_world_size(self):
        points = straggler_amplification_study(world_sizes=(1, 8),
                                               jitter=0.10, sim_steps=8)
        assert points[1].amplification_pct > \
            points[0].amplification_pct + 2.0

    def test_requires_positive_jitter(self):
        with pytest.raises(ValueError):
            straggler_amplification_study(jitter=0.0)
