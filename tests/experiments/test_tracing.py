"""Tests for traced runs, span attribution, and the Fig. 11 split.

The PR's acceptance bound lives here: the per-step span sum must
reconcile with ``TrainingResult.total_time`` within 1%.
"""

import json

import pytest

from repro.experiments import overhead_split, traced_run
from repro.experiments.export import (
    records_to_csv,
    records_to_json,
    summarize_events,
    summarize_trace,
    write_records,
)
from repro.experiments.tracing import CATEGORIES
from repro.telemetry import to_chrome_trace, validate_chrome_trace
from repro.training.loop import WARMUP_STEPS


@pytest.fixture(scope="module")
def local_run():
    return traced_run("mobilenetv2", "localGPUs", sim_steps=5)


@pytest.fixture(scope="module")
def split():
    return overhead_split("mobilenetv2", composed="falconGPUs",
                          sim_steps=5)


class TestTracedRun:
    def test_reconciles_within_one_percent(self, local_run):
        assert local_run.reconciliation_error < 0.01
        assert local_run.reconstructed_total == pytest.approx(
            local_run.record.total_time, rel=0.01)

    def test_one_attribution_per_step(self, local_run):
        assert len(local_run.steps) == 5
        assert [s.step for s in local_run.steps] == list(range(5))

    def test_steady_steps_exclude_warmup(self, local_run):
        assert len(local_run.steady_steps) == 5 - WARMUP_STEPS

    def test_categories_sum_to_wall_every_step(self, local_run):
        for step in local_run.steps:
            assert step.accounted == pytest.approx(step.wall, rel=1e-6)

    def test_mean_split_covers_step(self, local_run):
        split = local_run.mean_step_split()
        assert set(split) == set(CATEGORIES)
        assert sum(split.values()) == pytest.approx(
            local_run.mean_step_seconds, rel=1e-6)

    def test_checkpoint_spans_captured(self, local_run):
        assert len(local_run.checkpoint_seconds) == 1
        assert local_run.mean_checkpoint_seconds == pytest.approx(
            local_run.record.checkpoint_time, rel=0.01)

    def test_trace_exports_valid(self, local_run):
        trace = to_chrome_trace(local_run.tracer)
        assert validate_chrome_trace(trace) == []

    def test_chaos_events_share_the_timeline(self, local_run):
        # the chassis event log (allocations etc.) lands as instants
        assert local_run.tracer.instants
        trace = to_chrome_trace(local_run.tracer)
        assert any(e["ph"] == "i" for e in trace["traceEvents"])


class TestOverheadSplit:
    def test_falcon_is_slower_and_comm_dominates(self, split):
        assert split.overhead_pct > 0
        rows = {r[0]: r for r in split.split_rows()}
        assert set(rows) == set(CATEGORIES)
        # Fig. 11: composed overhead is communication, not compute
        assert rows["comm"][4] > 50.0  # share %
        assert rows["comm"][3] > 0  # delta ms

    def test_both_runs_reconcile(self, split):
        assert split.baseline.reconciliation_error < 0.01
        assert split.composed.reconciliation_error < 0.01


class TestSummaryEmbedding:
    def test_summarize_trace(self, local_run):
        summary = summarize_trace(local_run.tracer)
        assert summary["spans"] == len(local_run.tracer.spans)
        assert "compute" in summary["by_category"]
        json.dumps(summary)

    def test_summarize_events(self, local_run):
        log = local_run.system.mcs.log
        summary = summarize_events(log)
        assert summary["count"] == len(log)
        json.dumps(summary)

    def test_json_embeds_summaries(self, local_run):
        trace_summary = summarize_trace(local_run.tracer)
        events_summary = summarize_events(local_run.system.mcs.log)
        blob = records_to_json([local_run.record],
                               events=[events_summary],
                               traces=[trace_summary])
        (row,) = json.loads(blob)
        assert row["trace"]["spans"] > 0
        assert row["events"]["count"] > 0

    def test_csv_embeds_summaries_as_json_columns(self, local_run):
        trace_summary = summarize_trace(local_run.tracer)
        text = records_to_csv([local_run.record], traces=[trace_summary])
        header, row = text.strip().split("\r\n")
        assert header.endswith(",trace")
        assert "events" not in header  # none supplied -> no column

    def test_write_records_with_summaries(self, local_run, tmp_path):
        path = write_records(
            [local_run.record], tmp_path / "out.json",
            events=[summarize_events(local_run.system.mcs.log)],
            traces=[summarize_trace(local_run.tracer)])
        (row,) = json.loads(path.read_text())
        assert "events" in row and "trace" in row

    def test_misaligned_summaries_rejected(self, local_run):
        with pytest.raises(ValueError):
            records_to_json([local_run.record], traces=[{}, {}])

    def test_plain_export_unchanged(self, local_run):
        (row,) = json.loads(records_to_json([local_run.record]))
        assert "events" not in row and "trace" not in row
