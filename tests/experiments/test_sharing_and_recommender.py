"""Tests for the sharing studies and the topology recommender."""

import pytest

from repro.experiments import (
    Recommendation,
    ResourcePricing,
    TopologyRecommender,
    reconfiguration_study,
    ring_placement_study,
    tenancy_isolation_study,
)
from repro.experiments.runner import run_configuration


class TestIsolation:
    def test_advanced_mode_isolation(self):
        result = tenancy_isolation_study(sim_steps=4)
        # Separate host ports + non-blocking switch: near-zero
        # interference between tenants.
        assert abs(result.interference_pct) < 2.0

    def test_ring_placement_penalties(self):
        result = ring_placement_study(sim_steps=4)
        # A ring crossing the host ports is slower than one that stays
        # inside the drawer switch...
        assert result.crossing_penalty_pct > 5.0
        # ...and a co-tenant sharing those crossings makes it much worse.
        assert result.interference_pct > 20.0
        assert result.across_drawers_shared > result.across_drawers_solo \
            > result.within_drawer


class TestReconfiguration:
    def test_growing_a_tenant_pays_off(self):
        result = reconfiguration_study(sim_steps=4)
        assert result.gpus_moved == 2
        assert result.reconfiguration_seconds > 0
        assert result.throughput_after > 1.5 * result.throughput_before
        # Doubling the GPUs amortizes the hot-plug cost quickly.
        assert result.breakeven_seconds < 60.0


class TestPricing:
    def test_configuration_costs(self):
        pricing = ResourcePricing()
        assert pricing.configuration_cost("localGPUs") == 8.0
        assert pricing.configuration_cost("falconGPUs") == \
            pytest.approx(5.6)
        assert pricing.configuration_cost("hybridGPUs") == \
            pytest.approx(6.8)
        assert pricing.configuration_cost("localNVMe") > \
            pricing.configuration_cost("localGPUs")

    def test_unknown_configuration(self):
        with pytest.raises(KeyError):
            ResourcePricing().configuration_cost("moonGPUs")


class TestRecommender:
    @pytest.fixture(scope="class")
    def records(self):
        return {
            key: [run_configuration(key, cfg, sim_steps=5)
                  for cfg in ("localGPUs", "falconGPUs")]
            for key in ("resnet50", "bert-large")
        }

    def test_vision_prefers_composable_pool(self, records):
        rec = TopologyRecommender().recommend_from_records(
            records["resnet50"])
        assert rec.recommended == "falconGPUs"

    def test_bert_large_stays_on_nvlink(self, records):
        rec = TopologyRecommender().recommend_from_records(
            records["bert-large"])
        assert rec.recommended == "localGPUs"

    def test_tolerance_zero_always_picks_fastest(self, records):
        rec = TopologyRecommender(tolerance_pct=0.0) \
            .recommend_from_records(records["resnet50"])
        assert rec.recommended == "localGPUs"

    def test_huge_tolerance_picks_cheapest(self, records):
        rec = TopologyRecommender(tolerance_pct=1000.0) \
            .recommend_from_records(records["bert-large"])
        assert rec.recommended == "falconGPUs"

    def test_table_rows_mark_recommendation(self, records):
        rec = TopologyRecommender().recommend_from_records(
            records["resnet50"])
        marked = [row for row in rec.table_rows()
                  if row[0].startswith("->")]
        assert len(marked) == 1
        assert rec.recommended in marked[0][0]

    def test_mixed_benchmarks_rejected(self, records):
        mixed = [records["resnet50"][0], records["bert-large"][0]]
        with pytest.raises(ValueError, match="multiple benchmarks"):
            TopologyRecommender().recommend_from_records(mixed)

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            TopologyRecommender().recommend_from_records([])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            TopologyRecommender(tolerance_pct=-1.0)
