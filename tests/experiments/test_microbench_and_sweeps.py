"""Tests for the microbenchmark and sweep helpers."""

import pytest

from repro.core import ComposableSystem
from repro.experiments import (
    count_dips,
    gpu_config_sweep,
    measure_pair,
    relative_time_rows,
    table4,
    telemetry_rows,
    traffic_rows,
)
from repro.experiments.traces import UtilizationTrace

import numpy as np


class TestMicrobench:
    @pytest.fixture(scope="class")
    def results(self):
        return table4()

    def test_table4_values(self, results):
        assert results["L-L"].bidirectional_bandwidth_gbs == \
            pytest.approx(72.37, rel=0.02)
        assert results["F-L"].bidirectional_bandwidth_gbs == \
            pytest.approx(19.64, rel=0.02)
        assert results["F-F"].bidirectional_bandwidth_gbs == \
            pytest.approx(24.47, rel=0.02)

    def test_table4_latencies(self, results):
        assert results["L-L"].p2p_write_latency_us == \
            pytest.approx(1.85, rel=0.02)
        assert results["F-L"].p2p_write_latency_us == \
            pytest.approx(2.66, rel=0.02)
        assert results["F-F"].p2p_write_latency_us == \
            pytest.approx(2.08, rel=0.02)

    def test_protocols(self, results):
        assert results["L-L"].protocol == "NVLink"
        assert results["F-F"].protocol == "PCI-e 4.0"

    def test_measure_pair_symmetric(self):
        system = ComposableSystem()
        bw_ab, lat_ab, _ = measure_pair(system, "falcon0/gpu0",
                                        "falcon0/gpu1")
        system2 = ComposableSystem()
        bw_ba, lat_ba, _ = measure_pair(system2, "falcon0/gpu1",
                                        "falcon0/gpu0")
        assert bw_ab == pytest.approx(bw_ba, rel=1e-6)
        assert lat_ab == pytest.approx(lat_ba, rel=1e-6)


class TestSweepHelpers:
    @pytest.fixture(scope="class")
    def sweep(self):
        # A small two-benchmark sweep keeps this suite fast; full sweeps
        # run in the benchmark harness.
        return gpu_config_sweep(benchmarks=["resnet50", "bert-large"],
                                sim_steps=5)

    def test_sweep_shape(self, sweep):
        assert set(sweep) == {"resnet50", "bert-large"}
        for by_config in sweep.values():
            assert set(by_config) == {"localGPUs", "hybridGPUs",
                                      "falconGPUs"}

    def test_relative_time_rows(self, sweep):
        rows = relative_time_rows(sweep)
        assert len(rows) == 2
        by_key = {row[0]: row for row in rows}
        # (benchmark, hybrid %, falcon %); BERT-large near 2x.
        assert by_key["bert-large"][2] > 60.0
        assert abs(by_key["resnet50"][2]) < 5.0

    def test_telemetry_rows(self, sweep):
        rows = telemetry_rows(sweep, "gpu_utilization")
        assert all(len(row) == 4 for row in rows)
        assert all(0 <= v <= 100 for row in rows for v in row[1:])

    def test_traffic_rows(self, sweep):
        rows = traffic_rows(sweep)
        by_key = {row[0]: row for row in rows}
        # (benchmark, hybrid GB/s, falcon GB/s)
        assert by_key["bert-large"][2] > by_key["resnet50"][2]


class TestTraceHelpers:
    def make_trace(self, values):
        arr = np.asarray(values, dtype=float)
        return UtilizationTrace("x", np.arange(arr.size, dtype=float), arr)

    def test_count_dips_hysteresis(self):
        trace = self.make_trace([90, 90, 10, 90, 50, 55, 90, 10, 90])
        # Two true dips; the 50/55 wiggle does not count.
        assert count_dips(trace) == 2

    def test_count_dips_requires_arming(self):
        trace = self.make_trace([10, 10, 10])
        assert count_dips(trace) == 0

    def test_plateau_mean_ignores_dips(self):
        trace = self.make_trace([90, 92, 5, 94, 0, 90])
        assert trace.plateau_mean == pytest.approx((90 + 92 + 94 + 90) / 4)
        assert trace.mean < trace.plateau_mean

    def test_nan_handling(self):
        trace = self.make_trace([np.nan, 90, 80])
        assert trace.peak == 90
        assert not np.isnan(trace.mean)
