"""Parallel memoized harness: cache keying, corruption, bypass, reuse."""

import json

import pytest

from repro.experiments import run_configuration
from repro.experiments.parallel import (
    NullCache,
    ResultCache,
    experiment_cell,
    opt_profile_cell,
    record_from_value,
    record_to_value,
    run_cells,
)
from repro.training import DistributedDataParallel, ShardedDataParallel

STEPS = 3  # tiny runs: these tests exercise the harness, not the sim


def cheap_cell(**overrides):
    kwargs = {"sim_steps": STEPS}
    kwargs.update(overrides)
    return experiment_cell("resnet50", "localGPUs", **kwargs)


class TestKeying:
    def test_key_is_deterministic(self):
        cache = ResultCache("/tmp/unused")
        assert cache.key(cheap_cell()) == cache.key(cheap_cell())

    def test_key_changes_with_plan_passes_and_seed(self):
        cache = ResultCache("/tmp/unused")
        base = cache.key(cheap_cell())
        assert cache.key(cheap_cell(plan_passes="all")) != base
        assert cache.key(cheap_cell(jitter_seed=7)) != base

    def test_key_changes_with_strategy_knobs(self):
        cache = ResultCache("/tmp/unused")
        a = cache.key(cheap_cell(
            strategy=DistributedDataParallel(bucket_bytes=25e6)))
        b = cache.key(cheap_cell(
            strategy=DistributedDataParallel(bucket_bytes=50e6)))
        assert a != b

    def test_key_changes_with_pass_knobs(self):
        # Two pipelines differing only in a knob value must miss each
        # other: the key carries resolved parameters, not pass names.
        from repro.plan.passes import GradientBucketing
        cache = ResultCache("/tmp/unused")
        a = cache.key(cheap_cell(
            plan_passes=[GradientBucketing(cap_bytes=25e6)]))
        b = cache.key(cheap_cell(
            plan_passes=[GradientBucketing(cap_bytes=100e6)]))
        assert a != b

    def test_equivalent_pass_spellings_alias(self):
        # ...while different spellings of the same resolved pipeline
        # ("all" vs explicit default instances) share one cache entry.
        from repro.plan.passes import resolve_passes
        cache = ResultCache("/tmp/unused")
        assert cache.key(cheap_cell(plan_passes="all")) == \
            cache.key(cheap_cell(plan_passes=resolve_passes("all")))

    def test_pass_instances_survive_the_cell_round_trip(self):
        # Cells are picklable dicts: instances canonicalize to specs at
        # cell build and rebuild as instances at execution.
        from repro.plan.passes import GradientBucketing
        cell = cheap_cell(
            plan_passes=[GradientBucketing(cap_bytes=25e6)])
        spec = cell["train_kwargs"]["plan_passes"]
        assert spec == [{"pass": "bucketing",
                         "params": {"cap_bytes": 25e6}}]
        json.dumps(cell)  # still fully serializable

    def test_unresolvable_passes_disable_the_cell(self):
        assert cheap_cell(plan_passes="no-such-pass") is None

    def test_key_changes_with_repro_version(self, monkeypatch):
        import repro
        cache = ResultCache("/tmp/unused")
        base = cache.key(cheap_cell())
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert cache.key(cheap_cell()) != base

    def test_unserializable_strategy_disables_the_cell(self):
        strategy = ShardedDataParallel()
        strategy.scribble = object()  # not JSONable
        assert cheap_cell(strategy=strategy) is None

    def test_opt_profile_cells_key_on_pipeline(self):
        cache = ResultCache("/tmp/unused")
        a = opt_profile_cell("bert-large", "falconGPUs", 4, "none", None)
        b = opt_profile_cell("bert-large", "falconGPUs", 4, "all", "all")
        assert cache.key(a) != cache.key(b)


class TestCacheRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = cheap_cell()
        assert cache.load(cell) is None  # cold
        value = {"step_time": 1.5, "throughput": 2.0}
        cache.store(cell, value)
        assert cache.load(cell) == value
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = cheap_cell()
        cache.store(cell, {"step_time": 1.5})
        path = cache.path(cell)
        path.write_text(path.read_text()[:10])  # simulate a torn write
        assert cache.load(cell) is None

    def test_wrong_shape_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = cheap_cell()
        cache.path(cell).parent.mkdir(parents=True, exist_ok=True)
        cache.path(cell).write_text(json.dumps({"value": [1, 2]}))
        assert cache.load(cell) is None
        cache.path(cell).write_text(json.dumps({"nope": 1}))
        assert cache.load(cell) is None

    def test_run_cells_recomputes_after_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = cheap_cell()
        [first] = run_cells([cell], cache=cache)
        path = cache.path(cell)
        path.write_text("{ not json")
        [second] = run_cells([cell], cache=cache)
        assert second == first
        assert cache.stores == 2  # the recompute re-stored the entry


class TestRunCells:
    def test_warm_cache_serves_hits_without_executing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [cheap_cell(), cheap_cell(sim_steps=STEPS + 1)]
        first = run_cells(cells, cache=cache)
        warm = ResultCache(tmp_path)
        second = run_cells(cells, cache=warm)
        assert second == first
        assert warm.hits == 2 and warm.misses == 0 and warm.stores == 0

    def test_null_cache_never_reads_nor_writes(self, tmp_path):
        null = NullCache()
        cell = cheap_cell()
        run_cells([cell], cache=null)
        run_cells([cell], cache=null)
        assert null.hits == 0 and null.misses == 2
        # Nothing was persisted anywhere a real cache would find it.
        disk = ResultCache(tmp_path)
        assert disk.load(cell) is None

    def test_values_round_trip_through_records(self):
        record = run_configuration("resnet50", "localGPUs",
                                   sim_steps=STEPS)
        value = record_to_value(record)
        rebuilt = record_from_value(value)
        assert rebuilt.step_time == record.step_time
        assert rebuilt.throughput == record.throughput
        assert rebuilt.result is None


class TestRunConfigurationCache:
    def test_cached_run_matches_live_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = run_configuration("resnet50", "localGPUs",
                                 sim_steps=STEPS, cache=cache)
        cached = run_configuration("resnet50", "localGPUs",
                                   sim_steps=STEPS, cache=cache)
        assert cache.hits == 1
        assert cached.step_time == live.step_time
        assert cached.result is None and live.result is not None


class TestWarmOptStudy:
    def test_warm_fig16_opt_executes_zero_simulations(self, tmp_path,
                                                      monkeypatch):
        from repro.experiments import optimized_ddp_study
        from repro.experiments import parallel as parallel_mod

        cache = ResultCache(tmp_path)
        cold = optimized_ddp_study(sim_steps=STEPS, cache=cache)

        def boom(cell):
            raise AssertionError(
                f"warm-cache study executed a simulation: {cell}")

        monkeypatch.setattr(parallel_mod, "_execute_cell", boom)
        warm_cache = ResultCache(tmp_path)
        warm = optimized_ddp_study(sim_steps=STEPS, cache=warm_cache)
        assert warm_cache.misses == 0
        assert warm.profiles.keys() == cold.profiles.keys()
        for name, profile in cold.profiles.items():
            assert warm.profiles[name].step_time == profile.step_time
