"""Elasticity study: resize cost, lost work, autoscaling policies."""

import pytest

from repro.experiments import (
    autoscaler_comparison,
    elastic_resize_run,
    elasticity_study,
    lost_work_comparison,
    reconfiguration_sweep,
)


@pytest.mark.chaos
class TestAcceptanceRun:
    def test_survives_one_shrink_and_one_grow(self):
        r = elastic_resize_run(sim_steps=10)
        assert r.completed
        assert r.faults == 1  # the gpu drop
        assert r.resizes == 2  # fault-driven shrink + operator grow
        assert r.final_world_size == 4  # full width restored
        worlds = set(r.world_trajectory)
        assert 2 in worlds and 4 in worlds

    def test_effective_global_batch_identical_at_every_step(self):
        # The headline invariant: the same global batch at every
        # optimizer step, across the shrink and the grow.
        r = elastic_resize_run(sim_steps=10)
        assert len(r.effective_batches) == r.total_steps
        assert r.batch_invariant
        assert set(r.effective_batches) == {8}

    def test_replicated_strategy_loses_no_work(self):
        r = elastic_resize_run(sim_steps=10)
        assert r.lost_steps == 0
        assert "live_state_recovered" in r.recovery_actions

    def test_resize_accounting_is_populated(self):
        r = elastic_resize_run(sim_steps=10)
        assert r.mean_recompose_s > 0
        assert r.attempts == 3  # initial + shrink resume + grow resume


@pytest.mark.chaos
class TestLostWorkComparison:
    def test_elastic_beats_checkpoint_restart_on_lost_work(self):
        records = lost_work_comparison(sim_steps=10, fail_step=3,
                                       checkpoint_interval=4)
        elastic = records["elastic"]
        baseline = records["checkpoint-restart"]
        assert elastic.completed and baseline.completed
        assert elastic.total_steps == baseline.total_steps
        assert elastic.lost_steps < baseline.lost_steps
        assert records["lost_steps_saved"] > 0

    def test_both_runtimes_face_the_same_fault(self):
        records = lost_work_comparison(sim_steps=10)
        assert records["elastic"].faults == 1
        assert records["checkpoint-restart"].faults == 1


@pytest.mark.chaos
class TestReconfigurationSweep:
    def test_goodput_decays_with_resize_frequency(self):
        records = reconfiguration_sweep(sim_steps=12,
                                        frequencies=(0, 2, 4))
        assert [r.label for r in records] \
            == ["resizes=0", "resizes=2", "resizes=4"]
        for r in records:
            assert r.completed
            assert r.batch_invariant
        goodput = [r.goodput for r in records]
        assert goodput[0] > goodput[1] > goodput[2]

    def test_resize_free_cell_never_reconfigures(self):
        (r,) = reconfiguration_sweep(sim_steps=8, frequencies=(0,))
        assert r.resizes == 0
        assert r.attempts == 1
        assert set(r.world_trajectory) == {4}


@pytest.mark.chaos
class TestAutoscalerComparison:
    def test_eager_wastes_more_teardowns_than_hysteresis(self):
        results = autoscaler_comparison(sim_steps=12, release_step=6)
        eager = results["eager"]
        hysteresis = results["hysteresis"]
        assert eager.completed and hysteresis.completed
        # Eager tears down for the inadmissible lone spare repeatedly;
        # hysteresis waits out the flapping capacity.
        assert eager.grow_abandoned > hysteresis.grow_abandoned
        assert eager.batch_invariant and hysteresis.batch_invariant

    def test_both_policies_eventually_reach_full_width(self):
        results = autoscaler_comparison(sim_steps=12, release_step=6)
        for r in results.values():
            assert r.final_world_size == 4


@pytest.mark.chaos
class TestStudyBundle:
    def test_smoke_bundle_is_json_shaped(self):
        study = elasticity_study(smoke=True)
        assert study["smoke"] is True
        assert study["acceptance"]["completed"]
        assert study["acceptance"]["batch_invariant"]
        assert study["acceptance"]["resizes"] >= 2
        assert study["lost_work"]["lost_steps_saved"] > 0
        assert len(study["reconfiguration_sweep"]) == 2
        assert set(study["autoscalers"]) == {"eager", "hysteresis"}
        import json
        json.dumps(study)  # every leaf serializes
