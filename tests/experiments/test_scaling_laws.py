"""Tests for the parametric overhead-scaling sweeps."""

import pytest

from repro.experiments import (
    overhead_vs_batch,
    overhead_vs_model_size,
    overhead_vs_width,
)


class TestDepthSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return overhead_vs_model_size(layer_counts=(4, 24), sim_steps=4)

    def test_params_grow_with_depth(self, points):
        assert points[0].params_m < points[1].params_m

    def test_absolute_times_grow_with_depth(self, points):
        assert points[1].local_step_time > points[0].local_step_time
        assert points[1].falcon_step_time > points[0].falcon_step_time

    def test_all_points_heavily_penalized_on_falcon(self, points):
        # NLP-class overhead at batch 6 regardless of depth.
        assert all(p.overhead_pct > 50.0 for p in points)

    def test_embedding_effect_small_models_relatively_worse(self, points):
        """Fixed-vocabulary embeddings carry gradient bytes but no FLOPs,
        so the shallow family member is *more* communication-bound."""
        assert points[0].overhead_pct > points[1].overhead_pct


class TestWidthSweep:
    def test_width_sweep_runs(self):
        points = overhead_vs_width(widths=(256, 1024), sim_steps=4)
        assert points[0].params_m < points[1].params_m
        assert all(p.overhead_pct > 50.0 for p in points)


class TestBatchSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return overhead_vs_batch(batches=(2, 6), sim_steps=4)

    def test_overhead_falls_with_batch(self, points):
        """The real mediator of the paper's size-overhead correlation:
        compute scales with the batch, gradients do not."""
        assert points[0].overhead_pct > points[1].overhead_pct + 30.0

    def test_throughput_still_improves_with_batch(self, points):
        per_sample_small = points[0].falcon_step_time / 2
        per_sample_large = points[1].falcon_step_time / 6
        assert per_sample_large < per_sample_small
