"""Tests for the scale-out comparison study."""

import pytest

from repro.experiments import allreduce_scale_out_study


class TestScaleOut:
    @pytest.fixture(scope="class")
    def result(self):
        return allreduce_scale_out_study(nbytes=670e6)

    def test_network_hierarchy(self, result):
        """NVLink < PCIe fabric < commodity Ethernet — the related-work
        section's 'the key enabler is the network' quantified."""
        assert result.local_nvlink < result.falcon_pcie \
            < result.ethernet_2hosts

    def test_falcon_sits_well_below_ethernet(self, result):
        assert result.ethernet_vs_falcon > 4.0

    def test_falcon_overhead_is_bounded(self, result):
        # The PCIe fabric costs single-digit multiples of NVLink, not the
        # order of magnitude Ethernet costs.
        assert 2.0 < result.falcon_vs_local < 10.0

    def test_scales_with_volume(self):
        small = allreduce_scale_out_study(nbytes=67e6)
        large = allreduce_scale_out_study(nbytes=670e6)
        assert large.ethernet_2hosts == pytest.approx(
            10 * small.ethernet_2hosts, rel=0.1)
