"""Tests for the §III-B dual-connection study."""

import pytest

from repro.experiments import dual_connection_study


class TestDualConnection:
    def test_comm_bound_model_prefers_single_connection(self):
        """Paper §III-B: the dual layout 'may slow communications between
        devices in the two halves of the drawer' — BERT-large's ring
        crosses the host twice and pays for it."""
        result = dual_connection_study("bert-large", sim_steps=5)
        assert result.dual_vs_single_pct > 8.0

    def test_vision_model_indifferent(self):
        """H2D is prefetched, P2P volume small: ResNet-50 barely notices
        the cabling."""
        result = dual_connection_study("resnet50", sim_steps=5)
        assert abs(result.dual_vs_single_pct) < 3.0

    def test_result_fields(self):
        result = dual_connection_study("bert-base", sim_steps=4)
        assert result.benchmark == "bert-base"
        assert result.single_connection > 0
        assert result.dual_connection > 0
