"""Fault-tolerance experiment runner: recovery paths and accounting."""

import pytest

from repro.chaos import FaultScenario
from repro.experiments import (
    cable_pull_scenario,
    checkpoint_cadence_sweep,
    fault_tolerance_study,
)


@pytest.mark.chaos
class TestFaultToleranceStudy:
    def test_falcon_recovers_via_hot_plug(self):
        r = fault_tolerance_study(benchmark="resnet50",
                                  configuration="falconGPUs",
                                  sim_steps=6)
        assert r.completed
        assert r.faults == 1
        assert r.attempts == 2
        assert r.final_world_size == 8  # spare restored full width
        assert "gpu_hotplug" in r.recovery_actions
        assert "checkpoint_rollback" in r.recovery_actions
        assert r.lost_steps > 0
        assert r.mttr > 0
        assert 0 < r.goodput < r.raw_throughput
        assert 0 < r.goodput_fraction < 1

    def test_local_degrades_to_n_minus_one(self):
        r = fault_tolerance_study(benchmark="resnet50",
                                  configuration="localGPUs",
                                  sim_steps=6)
        assert r.completed
        assert r.final_world_size == 7  # no spare pool for local GPUs
        assert "ring_shrunk" in r.recovery_actions
        assert "gpu_hotplug" not in r.recovery_actions

    def test_no_spare_forces_shrink_on_falcon(self):
        r = fault_tolerance_study(benchmark="resnet50",
                                  configuration="falconGPUs",
                                  sim_steps=6, spare=False)
        assert r.completed
        assert r.final_world_size == 7
        assert "ring_shrunk" in r.recovery_actions

    def test_seeded_study_is_reproducible(self):
        runs = [fault_tolerance_study(benchmark="resnet50",
                                      configuration="falconGPUs",
                                      sim_steps=6, seed=99)
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_explicit_scenario_is_honoured(self):
        scenario = FaultScenario("nothing-happens", [])
        r = fault_tolerance_study(benchmark="resnet50",
                                  configuration="falconGPUs",
                                  sim_steps=4, scenario=scenario)
        assert r.scenario == "nothing-happens"
        assert r.faults == 0
        assert r.attempts == 1
        assert r.lost_steps == 0

    def test_scripted_scenario_shape(self):
        s = cable_pull_scenario("falconGPUs", "falcon0/gpu1",
                                fault_time=3.0, repair_delay=1.0)
        actions = [(e.action, e.target) for e in s]
        assert ("pull_cable", "port:H1") in actions
        assert ("gpu_drop", "node:falcon0/gpu1") in actions
        assert actions[-1] == ("reseat_cable", "port:H1")
        local = cable_pull_scenario("localGPUs", "host0/gpu1",
                                    fault_time=3.0, repair_delay=1.0)
        assert [e.action for e in local] == ["gpu_drop"]


@pytest.mark.chaos
class TestCadenceSweep:
    def test_every_cadence_takes_the_hit(self):
        records = checkpoint_cadence_sweep(benchmark="resnet50",
                                           intervals=(1, 3),
                                           sim_steps=6)
        assert [r.checkpoint_interval for r in records] == [1, 3]
        for r in records:
            assert r.completed
            assert r.faults == 1
            assert r.final_world_size == 8  # transient: no ring surgery
            assert "gpu_hotplug" not in r.recovery_actions
            assert "ring_shrunk" not in r.recovery_actions

    def test_sparser_cadence_loses_more_work(self):
        records = checkpoint_cadence_sweep(benchmark="resnet50",
                                           intervals=(1, 4),
                                           sim_steps=8)
        lost = {r.checkpoint_interval: r.lost_steps for r in records}
        assert lost[4] >= lost[1]

    def test_rejects_local_configurations(self):
        with pytest.raises(ValueError):
            checkpoint_cadence_sweep(configuration="localGPUs")
