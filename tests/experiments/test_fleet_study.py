"""Tests for the fleet experiment runner and its CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.core import FleetSpec
from repro.experiments import SMOKE_SPEC, fleet_study


@pytest.fixture(scope="module")
def smoke_report():
    # One smoke run shared by the assertions below (each run simulates a
    # full multi-job trace).
    return fleet_study(smoke=True)


class TestFleetStudy:
    def test_smoke_invariants_hold(self, smoke_report):
        checks = smoke_report["checks"]
        assert checks["ok"], {k: v for k, v in checks.items() if not v}

    def test_smoke_report_shape(self, smoke_report):
        assert smoke_report["spec"] == SMOKE_SPEC.name
        assert smoke_report["chassis"] == 2
        assert smoke_report["jobs"] == 8
        assert len(smoke_report["records"]) == 8
        assert smoke_report["meta"]["smoke"] is True
        assert smoke_report["busiest_spine_link"] in \
            smoke_report["spine_traffic_gbs"]

    def test_smoke_trace_oversubscribes_the_fleet(self, smoke_report):
        # The smoke config intentionally front-loads the queue so FIFO
        # delays are visible.
        assert smoke_report["max_queue_delay_s"] > 0.0

    def test_seed_determinism(self):
        tiny = dict(spec=FleetSpec(name="tiny", chassis=2, hosts=1,
                                   gpus_per_chassis=2),
                    jobs=3, mean_interarrival=1.0, sim_steps=(2, 2))
        a = fleet_study(seed=5, **tiny)
        b = fleet_study(seed=5, **tiny)
        assert a["records"] == b["records"]
        assert a["makespan_s"] == b["makespan_s"]

    def test_custom_spec_reported(self):
        spec = FleetSpec(name="tri", chassis=3, hosts=1,
                         gpus_per_chassis=2)
        report = fleet_study(spec=spec, jobs=2, mean_interarrival=1.0,
                             sim_steps=(2, 2))
        assert report["spec"] == "tri"
        assert report["chassis"] == 3
        assert report["checks"]["multi_chassis"]


class TestFleetCLI:
    def test_fleet_smoke_exits_zero(self, capsys):
        assert main(["fleet", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "GPU utilization" in out
        assert "spine" in out.lower()

    def test_fleet_json_output(self, capsys, tmp_path):
        out_path = tmp_path / "fleet.json"
        assert main(["fleet", "--smoke", "--output",
                     str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["checks"]["ok"]
        assert report["jobs"] == 8

    def test_fleet_custom_shape(self, capsys):
        assert main(["fleet", "--chassis", "2", "--hosts", "1",
                     "--gpus-per-chassis", "2", "--trace-jobs", "3",
                     "--interarrival", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "job" in out.lower()
