"""Perf-regression gate: fixtures, injected slowdowns, baseline lookup."""

import copy
import json

import pytest

from repro.experiments.regress import (
    DEFAULT_TOLERANCE,
    MIN_BATCHED_SPEEDUP,
    MIN_CHURN_SPEEDUP,
    SEMANTIC_RTOL,
    compare_reports,
    find_baseline,
    load_report,
    run_regression,
)


def make_report(cells=None):
    if cells is None:
        cells = [
            ("localGPUs", "DP-FP16", 0.181, 12.0),
            ("localGPUs", "DDP-FP16", 0.121, 15.0),
            ("falconGPUs", "DDP-FP16", 0.364, 14.0),
        ]
    return {
        "meta": {"smoke": True},
        "plan_eval": [
            {"configuration": cfg, "variant": var,
             "sim_step_seconds": sim, "speedup": spd,
             "ops": 100, "fastpath_steps_per_s": 1000.0,
             "executor_steps_per_s": 1000.0 / spd}
            for cfg, var, sim, spd in cells
        ],
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        base = make_report()
        report = compare_reports(base, copy.deepcopy(base))
        assert report.ok
        assert len(report.cells) == 3
        assert not report.uncovered
        for c in report.cells:
            assert c.semantic_rel_err == 0.0
            assert c.speedup_ratio == 1.0

    def test_injected_2x_slowdown_fails_the_gate(self):
        base = make_report()
        slow = copy.deepcopy(base)
        for row in slow["plan_eval"]:
            row["speedup"] /= 2.0
        report = compare_reports(base, slow)
        assert not report.ok
        assert len(report.failures) == 3
        for c in report.failures:
            assert c.semantic_ok and not c.perf_ok
            assert c.speedup_ratio == pytest.approx(0.5)
        assert "REGRESSION" in report.render_text()
        assert "gate: FAIL" in report.render_text()

    def test_slowdown_within_tolerance_passes(self):
        base = make_report()
        mild = copy.deepcopy(base)
        for row in mild["plan_eval"]:
            row["speedup"] *= 1.0 - DEFAULT_TOLERANCE / 2
        assert compare_reports(base, mild).ok

    def test_semantic_drift_is_always_fatal(self):
        base = make_report()
        drifted = copy.deepcopy(base)
        drifted["plan_eval"][0]["sim_step_seconds"] *= 1.001
        # Even a huge tolerance band never excuses model drift.
        report = compare_reports(base, drifted, tolerance=0.99)
        assert not report.ok
        bad = report.failures[0]
        assert not bad.semantic_ok and bad.perf_ok
        assert bad.semantic_rel_err > SEMANTIC_RTOL
        assert "SEMANTIC DRIFT" in report.render_text()

    def test_compares_only_the_intersection(self):
        base = make_report()
        current = make_report(cells=[
            ("localGPUs", "DP-FP16", 0.181, 12.0),
            ("falconGPUs", "Pipeline-FP16", 0.313, 9.0),  # new cell
        ])
        report = compare_reports(base, current)
        assert report.ok
        assert len(report.cells) == 1
        assert ("falconGPUs", "Pipeline-FP16") in report.uncovered
        assert ("localGPUs", "DDP-FP16") in report.uncovered

    def test_no_shared_cells_fails(self):
        report = compare_reports(make_report(), make_report(cells=[
            ("ethGPUs", "DP-FP32", 0.5, 3.0)]))
        assert not report.ok

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(make_report(), make_report(), tolerance=1.5)

    def test_as_dict_round_trips_through_json(self):
        report = compare_reports(make_report(), make_report())
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["tolerance"] == DEFAULT_TOLERANCE


class TestBaselineFiles:
    def test_find_baseline_picks_newest(self, tmp_path):
        (tmp_path / "BENCH_2026-01-01.json").write_text("{}")
        (tmp_path / "BENCH_2026-08-07.json").write_text("{}")
        found = find_baseline(tmp_path)
        assert found.name == "BENCH_2026-08-07.json"

    def test_find_baseline_empty_dir(self, tmp_path):
        assert find_baseline(tmp_path) is None

    def test_load_report_rejects_non_perfbench_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"meta": {}}))
        with pytest.raises(ValueError):
            load_report(path)


class TestRunRegression:
    def test_missing_baseline_raises(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(FileNotFoundError):
            run_regression()

    def test_injected_current_report(self, tmp_path):
        base = make_report()
        path = tmp_path / "BENCH_2026-08-08.json"
        path.write_text(json.dumps(base))
        slow = copy.deepcopy(base)
        for row in slow["plan_eval"]:
            row["speedup"] /= 2.0
        report = run_regression(baseline_path=path, current=slow)
        assert not report.ok
        assert report.baseline_path == str(path)

    def test_against_committed_repo_baseline(self):
        # The committed ledger must at least parse and cover the smoke
        # cells; the live gate itself runs in CI (`repro regress`).
        from pathlib import Path
        repo = Path(__file__).resolve().parents[2]
        baseline = find_baseline(repo)
        assert baseline is not None
        report = load_report(baseline)
        keys = {(r["configuration"], r["variant"])
                for r in report["plan_eval"]}
        assert ("localGPUs", "DDP-FP16") in keys


class TestChurnGate:
    """The flow-churn microbench pins the incremental solver speedup."""

    @staticmethod
    def churn(speedup=12.0, equivalent=True):
        return {"flows": 1000, "links": 64, "churn_ops": 100,
                "incremental_s": 0.1, "batch_s": 0.1 * speedup,
                "speedup": speedup, "equivalent": equivalent}

    def test_fast_equivalent_churn_passes(self):
        base = make_report()
        base["flow_churn"] = self.churn(speedup=10.0)
        current = make_report()
        current["flow_churn"] = self.churn(speedup=12.0)
        report = compare_reports(base, current)
        assert report.ok
        assert report.churn["ok"]
        assert "flow churn" in report.render_text()

    def test_speedup_below_floor_fails(self):
        current = make_report()
        current["flow_churn"] = self.churn(speedup=MIN_CHURN_SPEEDUP / 2)
        report = compare_reports(make_report(), current)
        assert not report.ok
        assert not report.churn["ok"]

    def test_divergence_from_oracle_fails(self):
        current = make_report()
        current["flow_churn"] = self.churn(speedup=50.0,
                                           equivalent=False)
        report = compare_reports(make_report(), current)
        assert not report.ok

    def test_reports_without_churn_are_ungated(self):
        # Old baselines predate the microbench: nothing to gate.
        report = compare_reports(make_report(), make_report())
        assert report.churn is None
        assert report.ok

    def test_churn_in_as_dict(self):
        current = make_report()
        current["flow_churn"] = self.churn()
        report = compare_reports(make_report(), current)
        assert report.as_dict()["flow_churn"]["ok"]


class TestBatchedGate:
    """The batched-grid scenario pins the tape-replay speedup."""

    @staticmethod
    def batched(speedup=3.5, values_match=True):
        return {"cells": 6, "lanes": 96, "groups": 6,
                "batched_lanes": 78, "fallback_lanes": 18,
                "scalar_fastpath_s": 0.35 * speedup, "batched_s": 0.35,
                "speedup_vs_scalar": speedup,
                "values_match": values_match, "max_rel_err": 0.0}

    def test_fast_equivalent_replay_passes(self):
        base = make_report()
        base["batched_grid"] = self.batched(speedup=3.2)
        current = make_report()
        current["batched_grid"] = self.batched(speedup=4.0)
        report = compare_reports(base, current)
        assert report.ok
        assert report.batched["ok"]
        assert report.batched["baseline_speedup"] == 3.2
        assert "batched grid" in report.render_text()

    def test_speedup_below_floor_fails(self):
        current = make_report()
        current["batched_grid"] = self.batched(
            speedup=MIN_BATCHED_SPEEDUP - 0.5)
        report = compare_reports(make_report(), current)
        assert not report.ok
        assert not report.batched["ok"]

    def test_divergence_from_scalar_fails(self):
        current = make_report()
        current["batched_grid"] = self.batched(speedup=50.0,
                                               values_match=False)
        report = compare_reports(make_report(), current)
        assert not report.ok

    def test_old_baselines_are_ungated(self):
        # Baselines predating the scenario gate nothing — and a current
        # run without it (old checkout) is equally ungated.
        current = make_report()
        current["batched_grid"] = self.batched()
        report = compare_reports(make_report(), current)
        assert report.batched["ok"]
        assert report.batched["baseline_speedup"] is None
        report = compare_reports(current, make_report())
        assert report.batched is None
        assert report.ok

    def test_batched_in_as_dict(self):
        current = make_report()
        current["batched_grid"] = self.batched()
        report = compare_reports(make_report(), current)
        assert report.as_dict()["batched_grid"]["ok"]
