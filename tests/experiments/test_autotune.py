"""Pass-parameter autotuning: candidates, frontier, tuning table."""

import json

import pytest

from repro.experiments.autotune import (
    TUNING_BASENAME,
    autotune_cell,
    candidate_pipelines,
    load_tuning_table,
    run_autotune,
    tuned_passes,
    write_tuning_table,
)
from repro.experiments.software_opts import VARIANTS
from repro.plan.passes import (
    CollectiveChunkSizing,
    GradientBucketing,
    passes_to_spec,
)


def variant(name):
    return next(v for v in VARIANTS if v.name == name)


def small_candidates():
    """Default plus two cheap knob points — enough to tune a cell."""
    cands = candidate_pipelines(smoke=True)
    return [cands[0]] + cands[1:3]


class TestCandidates:
    def test_default_is_first_and_flagged(self):
        cands = candidate_pipelines()
        assert cands[0].label == "default"
        assert cands[0].is_default
        assert not any(c.is_default for c in cands[1:])
        assert passes_to_spec(cands[0].passes) == passes_to_spec("all")

    def test_specs_are_unique(self):
        cands = candidate_pipelines()
        specs = [json.dumps(passes_to_spec(c.passes), sort_keys=True)
                 for c in cands]
        assert len(specs) == len(set(specs))

    def test_smoke_grid_is_smaller(self):
        assert len(candidate_pipelines(smoke=True)) < \
            len(candidate_pipelines(smoke=False))

    def test_every_candidate_keeps_copy_fusion(self):
        for cand in candidate_pipelines():
            assert any(p.name == "copy-fusion" for p in cand.passes)

    def test_chunkless_candidates_exist(self):
        cands = candidate_pipelines()
        assert any(not any(p.name == "chunk-size" for p in c.passes)
                   for c in cands)


class TestCellTuning:
    def test_tuned_never_slower_than_default(self):
        cell = autotune_cell("localGPUs", variant("DDP-FP16"),
                             small_candidates(),
                             what_if_ceilings=False)
        assert cell["tuned_makespan_s"] <= cell["default_makespan_s"]
        assert len(cell["candidates"]) == 3
        assert cell["batch"]["batched_lanes"] \
            + cell["batch"]["fallback_lanes"] == 3

    def test_default_wins_ties(self):
        # Knob points that don't move the makespan must not displace
        # the default pipeline from the tuned slot.
        cell = autotune_cell("localGPUs", variant("DP-FP16"),
                             small_candidates(),
                             what_if_ceilings=False)
        by_label = {c["label"]: c["makespan_s"]
                    for c in cell["candidates"]}
        if by_label["default"] == cell["tuned_makespan_s"]:
            assert cell["tuned_candidate"] == "default"

    def test_what_if_ceilings_bound_the_makespan(self):
        cell = autotune_cell("localGPUs", variant("DDP-FP16"),
                             small_candidates())
        for bucket, ceiling in cell["whatif_ceilings_s"].items():
            assert ceiling <= cell["tuned_makespan_s"] + 1e-12, bucket


class TestReportAndTable:
    @pytest.fixture(scope="class")
    def report(self):
        return run_autotune(
            smoke=True, configurations=("localGPUs",),
            variants=(variant("DDP-FP16"),), what_if_ceilings=False)

    def test_frontier_invariant(self, report):
        assert report["tuned_never_slower"]
        assert report["meta"]["cells"] == 1

    def test_table_round_trip(self, report, tmp_path):
        path = write_tuning_table(report, tmp_path)
        assert path.name == TUNING_BASENAME
        loaded = load_tuning_table(path)
        assert loaded["table"] == report["table"]

    def test_table_creates_missing_output_directory(self, report,
                                                    tmp_path):
        path = write_tuning_table(report, tmp_path / "fresh" / "dir")
        assert path.exists()

    def test_tuned_passes_rebuilds_instances(self, report):
        passes = tuned_passes(report, "bert-large", "localGPUs",
                              "DDP-FP16")
        assert passes is not None
        names = [p.name for p in passes]
        assert "copy-fusion" in names
        spec = report["table"]["bert-large|localGPUs|DDP-FP16"]["passes"]
        assert passes_to_spec(passes) == spec
        for p in passes:
            if isinstance(p, GradientBucketing):
                assert p.cap_bytes > 0
            if isinstance(p, CollectiveChunkSizing):
                assert p.target_seconds > 0

    def test_tuned_passes_missing_cell_is_none(self, report):
        assert tuned_passes(report, "bert-large", "falconGPUs",
                            "DP-FP32") is None

    def test_load_rejects_malformed_table(self, tmp_path):
        bogus = tmp_path / TUNING_BASENAME
        bogus.write_text(json.dumps({"cells": []}))
        with pytest.raises(ValueError, match="table"):
            load_tuning_table(bogus)
        with pytest.raises(FileNotFoundError):
            load_tuning_table(tmp_path / "absent.json")


class TestCLI:
    def test_autotune_smoke_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["autotune", "--smoke", "--no-what-if",
                   "--output", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / TUNING_BASENAME).exists()
        out = capsys.readouterr().out
        assert "Autotune frontier" in out
