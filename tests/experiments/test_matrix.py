"""The strategy x model crossover matrix: fitting, frontier, formatting."""

import pytest

from repro.cli import build_parser
from repro.devices.gpu import Precision
from repro.experiments.matrix import (
    MATRIX_CONFIGURATIONS,
    MATRIX_MODELS,
    SMOKE_MODELS,
    MatrixCell,
    _fit_operating_point,
    crossover_frontier,
    format_matrix,
    plan_comm_bytes,
    run_matrix,
)
from repro.plan import PlanBuilder


def test_smoke_models_are_a_subset_of_the_full_suite():
    assert set(SMOKE_MODELS) <= set(MATRIX_MODELS)
    assert set(MATRIX_CONFIGURATIONS) == {"localGPUs", "falconGPUs"}


def test_plan_comm_bytes_counts_collectives_and_p2p():
    b = PlanBuilder("p", world_size=2)
    for rank in range(2):
        f = b.compute(rank, "fwd", flops=1e9, hbm_bytes=0.0,
                      precision=Precision.FP16, efficiency=0.5)
        b.collective(rank, "ar", "allreduce", 3e6, deps=[f])
    b.h2d(0, "in", 5e6)   # host copies are not fabric collectives
    assert plan_comm_bytes(b.build()) == pytest.approx(6e6)


def test_fit_operating_point_respects_memory_and_divisibility():
    # TP replicates the global batch on every rank: bert-large at its
    # native batch only fits once accumulation shrinks the micro-batch.
    job, gb, acc, reason = _fit_operating_point(
        "bert-large", "localGPUs", "tp", sim_steps=2, plan_passes=None)
    assert job is not None and reason is None
    assert gb == 48 and acc > 1
    # DDP fits the native batch outright.
    _job, gb, acc, _reason = _fit_operating_point(
        "bert-large", "localGPUs", "ddp", sim_steps=2, plan_passes=None)
    assert (gb, acc) == (48, 1)


def _cell(cfg, model, strategy, tps):
    return MatrixCell(configuration=cfg, benchmark=model,
                      strategy=strategy, fitted=True,
                      time_per_sample=tps)


def test_crossover_frontier_flags_flipped_winners():
    cells = [
        _cell("localGPUs", "m1", "ddp", 1.0),
        _cell("localGPUs", "m1", "pipeline", 2.0),
        _cell("falconGPUs", "m1", "ddp", 3.0),
        _cell("falconGPUs", "m1", "pipeline", 2.5),
        _cell("localGPUs", "m2", "ddp", 1.0),
        _cell("falconGPUs", "m2", "ddp", 1.5),
        MatrixCell(configuration="falconGPUs", benchmark="m2",
                   strategy="tp", fitted=False),
    ]
    winners, crossover = crossover_frontier(
        cells, ("localGPUs", "falconGPUs"))
    assert winners["localGPUs"] == {"m1": "ddp", "m2": "ddp"}
    assert winners["falconGPUs"] == {"m1": "pipeline", "m2": "ddp"}
    assert crossover == ["m1"]


def test_run_matrix_tiny_slice_end_to_end():
    report = run_matrix(models=("bert-large",),
                        strategies=("ddp", "pipeline"), sim_steps=2)
    assert len(report.cells) == 4   # 2 configs x 1 model x 2 strategies
    for cell in report.cells:
        assert cell.fitted
        assert cell.step_time > 0
        assert cell.time_per_sample > 0
        assert cell.comm_bytes_per_step > 0
        assert cell.label in ("compute-bound", "comm-bound",
                              "copy-bound", "storage-bound",
                              "framework-bound")
    assert set(report.frontier) == {"localGPUs", "falconGPUs"}
    text = format_matrix(report)
    assert "crossover frontier" in text
    assert "bert-large" in text


def test_run_matrix_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="unknown strategies"):
        run_matrix(models=("bert-large",), strategies=("warp",),
                   sim_steps=2)


def test_cli_parses_matrix_flags():
    args = build_parser().parse_args(
        ["matrix", "--smoke", "--steps", "3", "--models",
         "bert-large,resnet50", "--strategies", "ddp,tp",
         "--jobs", "2", "--no-cache"])
    assert args.command == "matrix"
    assert args.smoke and args.steps == 3
    assert args.models == "bert-large,resnet50"
    assert args.strategies == "ddp,tp"
