"""Unit tests for the multi-chassis ComposableFleet."""

import pytest

from repro.core import (
    ComposableFleet,
    FLEET_FOUR_CHASSIS,
    FLEET_PRESETS,
    FLEET_TWO_CHASSIS,
    FleetError,
    FleetSpec,
)


@pytest.fixture()
def fleet():
    return ComposableFleet(FleetSpec(name="t", chassis=2, hosts=2,
                                     gpus_per_chassis=4))


class TestFleetSpec:
    def test_total_gpus(self):
        assert FLEET_TWO_CHASSIS.total_gpus == 16
        assert FLEET_FOUR_CHASSIS.total_gpus == 32

    def test_presets_registry(self):
        assert FLEET_PRESETS[FLEET_TWO_CHASSIS.name] is FLEET_TWO_CHASSIS
        assert FLEET_PRESETS[FLEET_FOUR_CHASSIS.name] is FLEET_FOUR_CHASSIS

    @pytest.mark.parametrize("kwargs", [
        {"chassis": 0},
        {"hosts": 0},
        {"gpus_per_chassis": 0},
        {"oversubscription": 0.0},
        {"oversubscription": -1.0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(name="bad", chassis=2, hosts=2, gpus_per_chassis=8)
        base.update(kwargs)
        with pytest.raises(ValueError):
            FleetSpec(**base)


class TestFleetConstruction:
    def test_shape(self, fleet):
        assert len(fleet.falcons) == 2
        assert len(fleet.hosts) == 2
        assert len(fleet.gpus) == 8
        assert sorted(fleet.free_gpus()) == sorted(fleet.gpus)

    def test_hosts_are_gpu_less(self, fleet):
        assert all(host.gpus == [] for host in fleet.hosts)

    def test_home_host_round_robin(self, fleet):
        assert fleet.home_host(0) is fleet.hosts[0]
        assert fleet.home_host(1) is fleet.hosts[1]

    def test_home_hosts_admitted_at_build(self, fleet):
        for c in range(2):
            home = fleet.home_host(c)
            assert fleet.is_admitted(home.name, c, 0)
            assert fleet.is_admitted(home.name, c, 1)

    def test_gpus_split_across_drawers(self, fleet):
        falcon = fleet.falcons[0]
        by_drawer = {d.index: [s.device for s in d.slots if s.device]
                     for d in falcon.drawers}
        assert len(by_drawer[0]) == 2
        assert len(by_drawer[1]) == 2

    def test_route_host_to_remote_gpu_crosses_spine(self, fleet):
        # host0's home is chassis 0; the path to a chassis-1 GPU must
        # transit the spine.
        route = fleet.topology.route("host0/rc", "falcon1/gpu0")
        assert fleet.spine in route.nodes

    def test_oversubscription_derates_uplinks(self):
        flat = ComposableFleet(FleetSpec(name="flat", chassis=2, hosts=1,
                                         gpus_per_chassis=2))
        over = ComposableFleet(FleetSpec(name="over", chassis=2, hosts=1,
                                         gpus_per_chassis=2,
                                         oversubscription=2.0))
        bw = lambda f: f.host_uplinks["host0"].spec.bandwidth
        assert bw(over) == pytest.approx(bw(flat) / 2.0)

    def test_lookup_errors(self, fleet):
        with pytest.raises(KeyError):
            fleet.host_by_name("nope")
        with pytest.raises(KeyError):
            fleet.gpu("falcon9/gpu0")


class TestAdmission:
    def test_admit_visiting_host(self, fleet):
        fleet.admit("host0", 1, 0)
        assert fleet.is_admitted("host0", 1, 0)
        fleet.release("host0", 1, 0)
        assert not fleet.is_admitted("host0", 1, 0)

    def test_admit_is_refcounted(self, fleet):
        fleet.admit("host0", 1, 0)
        fleet.admit("host0", 1, 0)
        fleet.release("host0", 1, 0)
        assert fleet.is_admitted("host0", 1, 0)  # one ref still held
        fleet.release("host0", 1, 0)
        assert not fleet.is_admitted("host0", 1, 0)

    def test_home_admission_survives_release(self, fleet):
        home = fleet.home_host(0).name
        fleet.admit(home, 0, 0)      # scheduler takes a ref on home turf
        fleet.release(home, 0, 0)
        fleet.release(home, 0, 0)    # over-release must not uncable home
        assert fleet.is_admitted(home, 0, 0)

    def test_release_unknown_admission_is_noop(self, fleet):
        fleet.release("host0", 1, 1)  # never admitted

    def test_port_exhaustion_raises_fleet_error(self, fleet):
        # Chassis 0 has 2 free ports (H3, H4) after the home cabling.
        fleet.admit("host1", 0, 0)
        fleet.admit("visitorA", 0, 1)
        with pytest.raises(FleetError, match="no free host port"):
            fleet.admit("visitorB", 0, 0)

    def test_ports_recycle_after_release(self, fleet):
        fleet.admit("host1", 0, 0)
        fleet.admit("visitorA", 0, 1)
        fleet.release("visitorA", 0, 1)
        fleet.admit("visitorB", 0, 0)  # reuses the freed port
        assert fleet.is_admitted("visitorB", 0, 0)


class TestSpineView:
    def test_spine_links_labels(self, fleet):
        links = fleet.spine_links()
        assert set(links) == {
            "uplink/host0", "uplink/host1",
            "trunk/falcon0/drawer0", "trunk/falcon0/drawer1",
            "trunk/falcon1/drawer0", "trunk/falcon1/drawer1",
        }

    def test_spine_traffic_zero_before_any_run(self, fleet):
        traffic = fleet.spine_traffic(0.0, 1.0)
        assert set(traffic) == set(fleet.spine_links())
        for stats in traffic.values():
            assert stats["to_spine_gbs"] == 0.0
            assert stats["from_spine_gbs"] == 0.0
