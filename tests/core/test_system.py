"""Unit tests for the ComposableSystem facade and presets."""

import pytest

from repro import (
    COMM_REQUIREMENTS,
    CONFIGURATION_DESCRIPTIONS,
    CONFIGURATION_ORDER,
    ComposableSystem,
    SOFTWARE_STACK,
)
from repro.fabric import FalconMode


@pytest.fixture(scope="module")
def system():
    return ComposableSystem()


class TestPresets:
    def test_software_stack_table1(self):
        assert SOFTWARE_STACK["CUDA"] == "10.2.89"
        assert SOFTWARE_STACK["CUDNN"] == "cudnn7.6.5"
        assert "wandb" in SOFTWARE_STACK["Profilers"]

    def test_configuration_table3(self):
        assert CONFIGURATION_ORDER == (
            "localGPUs", "hybridGPUs", "falconGPUs",
            "localNVMe", "falconNVMe")
        assert CONFIGURATION_DESCRIPTIONS["hybridGPUs"] == \
            "4 local GPUs, 4 falcon GPUs, and local storage"

    def test_fig5_requirements(self):
        assert len(COMM_REQUIREMENTS) == 3
        assert COMM_REQUIREMENTS[0].latency == "10 ns"


class TestConstruction:
    def test_paper_fig6_topology(self, system):
        # Host connected to both drawers, 4 V100s each, NVMe in drawer 1.
        assert system.falcon.port_map["H1"] == ("host0", 0)
        assert system.falcon.port_map["H2"] == ("host0", 1)
        assert len(system.falcon_gpus) == 8
        drawer0 = system.falcon.drawers[0].devices()
        assert sum(1 for d in drawer0 if "gpu" in d) == 4
        assert system.falcon_nvme.name in system.falcon.drawers[1].devices()

    def test_all_falcon_devices_allocated_to_host(self, system):
        devices = system.falcon.devices_of("host0")
        assert len(devices) == 9  # 8 GPUs + NVMe

    def test_local_inventory(self, system):
        assert len(system.host.gpus) == 8
        assert system.local_nvme is system.host.nvme

    def test_mcs_wired(self, system):
        assert "falcon0" in system.mcs.falcons
        assert system.mcs.log.query(kind="device_installed")

    def test_advanced_mode_option(self):
        system = ComposableSystem(falcon_mode=FalconMode.ADVANCED)
        assert system.falcon.mode is FalconMode.ADVANCED


class TestConfigure:
    def test_local_ring_order_is_nvlink_hamiltonian(self, system):
        active = system.configure("localGPUs")
        names = active.gpu_names
        # Consecutive ring neighbours (with wrap) are NVLink-adjacent:
        # every hop routes in one hop.
        topo = system.topology
        for i in range(len(names)):
            route = topo.route(names[i], names[(i + 1) % len(names)])
            assert route.hops == 1

    def test_hybrid_local_quad_is_nvlink_cycle(self, system):
        active = system.configure("hybridGPUs")
        local = [n for n in active.gpu_names if n.startswith("host0")]
        topo = system.topology
        for i in range(len(local)):
            route = topo.route(local[i], local[(i + 1) % len(local)])
            assert route.hops == 1

    def test_falcon_config_devices(self, system):
        active = system.configure("falconGPUs")
        assert len(active.gpus) == 8
        assert all(n.startswith("falcon0") for n in active.gpu_names)

    def test_storage_selection(self, system):
        assert system.configure("localGPUs").storage is system.host.scratch
        assert system.configure("localNVMe").storage is system.local_nvme
        assert system.configure("falconNVMe").storage is system.falcon_nvme

    def test_unknown_configuration(self, system):
        with pytest.raises(KeyError, match="available"):
            system.configure("quantumGPUs")

    def test_descriptions_attached(self, system):
        for name in CONFIGURATION_ORDER:
            active = system.configure(name)
            assert active.description == CONFIGURATION_DESCRIPTIONS[name]


class TestFalconNVMePath:
    def test_falcon_nvme_routes_through_host_port(self, system):
        route = system.topology.route("falcon0/nvme/media",
                                      "host0/dram")
        nodes = route.nodes
        assert "falcon0/drawer1/switch" in nodes
        assert "host0/rc" in nodes
