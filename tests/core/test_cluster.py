"""Tests for the multi-host cluster and advanced-mode tenancy."""

import pytest

from repro import ComposableCluster, JobSpec
from repro.core.cluster import HOTPLUG_SECONDS
from repro.fabric import FalconMode


@pytest.fixture()
def cluster():
    return ComposableCluster(hosts=3)


class TestConstruction:
    def test_three_hosts_share_drawer0(self, cluster):
        assert cluster.falcon.mode is FalconMode.ADVANCED
        assert set(cluster.falcon.hosts_of_drawer(0)) == \
            {"host0", "host1", "host2"}
        assert cluster.falcon.hosts_of_drawer(1) == ["host0"]

    def test_host_count_validation(self):
        with pytest.raises(ValueError):
            ComposableCluster(hosts=0)
        with pytest.raises(ValueError):
            ComposableCluster(hosts=5)

    def test_single_host_cluster(self):
        cluster = ComposableCluster(hosts=1)
        assert cluster.falcon.hosts_of_drawer(0) == ["host0"]
        assert cluster.falcon.hosts_of_drawer(1) == ["host0"]

    def test_devices_start_unallocated(self, cluster):
        assert all(cluster.falcon.owner_of(g.name) is None
                   for g in cluster.falcon_gpus)

    def test_gpu_lookup(self, cluster):
        assert cluster.gpu_by_name("falcon0/gpu3").name == "falcon0/gpu3"
        assert cluster.gpu_by_name("host1/gpu0").name == "host1/gpu0"
        with pytest.raises(KeyError):
            cluster.gpu_by_name("ghost")


class TestHotplug:
    def test_allocate_takes_hotplug_time(self, cluster):
        t0 = cluster.env.now
        done = cluster.allocate("falcon0/gpu0", 0)
        cluster.env.run(until=done)
        assert cluster.env.now - t0 == pytest.approx(HOTPLUG_SECONDS)
        assert cluster.falcon.owner_of("falcon0/gpu0") == "host0"

    def test_reallocation_moves_device(self, cluster):
        cluster.env.run(until=cluster.allocate("falcon0/gpu0", 0))
        cluster.env.run(until=cluster.allocate("falcon0/gpu0", 1))
        assert cluster.falcon.owner_of("falcon0/gpu0") == "host1"

    def test_bulk_reconfigure_sequential_cost(self, cluster):
        t0 = cluster.env.now
        done = cluster.reconfigure({"falcon0/gpu0": 0, "falcon0/gpu1": 0,
                                    "falcon0/gpu2": 1})
        cluster.env.run(until=done)
        assert cluster.env.now - t0 == pytest.approx(3 * HOTPLUG_SECONDS)


class TestConcurrentJobs:
    def test_two_tenants_run_concurrently(self, cluster):
        cluster.env.run(until=cluster.reconfigure({
            "falcon0/gpu0": 0, "falcon0/gpu1": 0,
            "falcon0/gpu2": 1, "falcon0/gpu3": 1}))
        results = cluster.run_jobs([
            JobSpec(0, "bert-base", ("falcon0/gpu0", "falcon0/gpu1"),
                    global_batch=24, sim_steps=5),
            JobSpec(1, "bert-base", ("falcon0/gpu2", "falcon0/gpu3"),
                    global_batch=24, sim_steps=5),
        ])
        assert len(results) == 2
        assert all(r.step_time > 0 for r in results)
        # Near-perfect isolation across tenants (separate ports, non-
        # blocking drawer switch).
        assert results[0].step_time == pytest.approx(results[1].step_time,
                                                     rel=0.05)

    def test_job_on_foreign_device_rejected(self, cluster):
        cluster.env.run(until=cluster.allocate("falcon0/gpu0", 1))
        with pytest.raises(PermissionError):
            cluster.run_jobs([
                JobSpec(0, "bert-base", ("falcon0/gpu0",),
                        global_batch=12, sim_steps=2)])

    def test_local_gpus_need_no_allocation(self, cluster):
        results = cluster.run_jobs([
            JobSpec(1, "bert-base",
                    ("host1/gpu0", "host1/gpu1"),
                    global_batch=24, sim_steps=4)])
        assert results[0].world_size == 2

    def test_empty_jobs(self, cluster):
        assert cluster.run_jobs([]) == []


class TestJobLifecycle:
    def test_double_start_rejected(self, cluster):
        from repro.training import TrainingConfig, TrainingJob
        from repro.workloads import get_benchmark
        cluster.env.run(until=cluster.reconfigure({"falcon0/gpu0": 0,
                                                   "falcon0/gpu1": 0}))
        config = TrainingConfig(benchmark=get_benchmark("bert-base"),
                                global_batch=24, sim_steps=2)
        gpus = [cluster.gpu_by_name("falcon0/gpu0"),
                cluster.gpu_by_name("falcon0/gpu1")]
        job = TrainingJob(cluster.env, cluster.topology, cluster.hosts[0],
                          gpus, cluster.hosts[0].scratch, config)
        job.start()
        with pytest.raises(RuntimeError):
            job.start()

    def test_collect_before_done_rejected(self, cluster):
        from repro.training import TrainingConfig, TrainingJob
        from repro.workloads import get_benchmark
        config = TrainingConfig(benchmark=get_benchmark("bert-base"),
                                global_batch=24, sim_steps=2)
        gpus = cluster.hosts[0].gpus[:2]
        job = TrainingJob(cluster.env, cluster.topology, cluster.hosts[0],
                          gpus, cluster.hosts[0].scratch, config)
        with pytest.raises(RuntimeError):
            job.collect()
        job.start()
        with pytest.raises(RuntimeError):
            job.collect()
