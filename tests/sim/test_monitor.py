"""Unit and property tests for repro.sim.monitor."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import CounterMonitor, TimeSeries


class TestTimeSeries:
    def test_empty_summary_is_nan(self):
        ts = TimeSeries("empty")
        s = ts.summary()
        assert s.count == 0
        assert np.isnan(s.mean)

    def test_basic_stats(self):
        ts = TimeSeries("util", "%")
        for t, v in [(0, 10.0), (1, 20.0), (2, 30.0)]:
            ts.record(t, v)
        s = ts.summary()
        assert s.count == 3
        assert s.mean == pytest.approx(20.0)
        assert s.minimum == 10.0
        assert s.maximum == 30.0
        assert s.p50 == pytest.approx(20.0)

    def test_time_weighted_mean_unequal_spacing(self):
        ts = TimeSeries()
        # value 0 over [0, 9), value 100 over [9, 10)
        ts.record(0.0, 0.0)
        ts.record(9.0, 100.0)
        ts.record(10.0, 100.0)
        s = ts.summary()
        assert s.time_weighted_mean == pytest.approx(10.0)

    def test_non_monotonic_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_windowed_summary(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t))
        s = ts.summary(t_start=5.0, t_end=7.0)
        assert s.count == 3
        assert s.mean == pytest.approx(6.0)

    def test_resample_sample_and_hold(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(2.0, 5.0)
        out = ts.resample([0.0, 0.5, 1.9, 2.0, 3.0])
        np.testing.assert_allclose(out, [1.0, 1.0, 1.0, 5.0, 5.0])

    def test_resample_before_first_sample_is_nan(self):
        ts = TimeSeries()
        ts.record(1.0, 7.0)
        out = ts.resample([0.0, 1.0])
        assert np.isnan(out[0]) and out[1] == 7.0

    def test_windows_means(self):
        ts = TimeSeries()
        for t in range(6):
            ts.record(float(t), float(t))
        starts, means = ts.windows(2.0)
        np.testing.assert_allclose(starts, [0.0, 2.0, 4.0])
        np.testing.assert_allclose(means, [0.5, 2.5, 4.5])

    def test_windows_bad_width(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.windows(0.0)

    def test_last(self):
        ts = TimeSeries()
        assert ts.last() is None
        ts.record(0.0, 3.0)
        assert ts.last() == 3.0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50))
    def test_tw_mean_bounded_by_min_max(self, values):
        ts = TimeSeries()
        for i, v in enumerate(values):
            ts.record(float(i), v)
        s = ts.summary()
        assert s.minimum - 1e-9 <= s.time_weighted_mean <= s.maximum + 1e-9


class TestCounterMonitor:
    def test_total_accumulates(self):
        c = CounterMonitor("bytes")
        c.add(1.0, 100.0)
        c.add(2.0, 50.0)
        assert c.total == 150.0

    def test_negative_increment_rejected(self):
        c = CounterMonitor()
        with pytest.raises(ValueError):
            c.add(1.0, -5.0)

    def test_non_monotonic_time_rejected(self):
        c = CounterMonitor()
        c.add(2.0, 1.0)
        with pytest.raises(ValueError):
            c.add(1.0, 1.0)

    def test_same_time_accumulates(self):
        c = CounterMonitor()
        c.add(1.0, 10.0)
        c.add(1.0, 15.0)
        assert c.total == 25.0

    def test_mean_rate(self):
        c = CounterMonitor()
        c.add(0.0, 0.0)
        c.add(10.0, 1000.0)
        assert c.mean_rate(0.0, 10.0) == pytest.approx(100.0)

    def test_mean_rate_zero_window_is_nan(self):
        # A rate over a zero-length window is undefined, not zero (and
        # must not raise ZeroDivisionError).
        c = CounterMonitor()
        c.add(1.0, 100.0)
        assert math.isnan(c.mean_rate(1.0, 1.0))

    def test_mean_rate_reversed_window_raises(self):
        c = CounterMonitor()
        with pytest.raises(ValueError):
            c.mean_rate(2.0, 1.0)

    def test_total_between_interpolates(self):
        c = CounterMonitor()
        c.add(10.0, 100.0)
        assert c.total_between(0.0, 5.0) == pytest.approx(50.0)

    def test_rate_series(self):
        c = CounterMonitor()
        c.add(1.0, 100.0)
        c.add(2.0, 100.0)
        c.add(3.0, 100.0)
        starts, rates = c.rate_series(1.0, t_end=3.0)
        assert len(starts) == 3
        np.testing.assert_allclose(rates, [100.0, 100.0, 100.0])

    @given(st.lists(
        st.tuples(st.floats(min_value=0.001, max_value=1.0),
                  st.floats(min_value=0.0, max_value=1e6)),
        min_size=1, max_size=40))
    def test_total_between_sums_to_total(self, increments):
        c = CounterMonitor()
        t = 0.0
        for dt, amount in increments:
            t += dt
            c.add(t, amount)
        assert c.total_between(0.0, t) == pytest.approx(c.total, rel=1e-9)


class TestWindowedEdgeCases:
    """Windowed statistics on degenerate windows (observability PR)."""

    def test_summary_window_with_no_samples_inside(self):
        ts = TimeSeries("util")
        ts.record(10.0, 50.0)
        s = ts.summary(2.0, 5.0)
        assert s.count == 0
        assert np.isnan(s.mean)
        assert np.isnan(s.time_weighted_mean)

    def test_summary_window_entirely_before_first_sample(self):
        ts = TimeSeries("util")
        ts.record(100.0, 1.0)
        ts.record(200.0, 2.0)
        s = ts.summary(0.0, 50.0)
        assert s.count == 0
        assert np.isnan(s.time_weighted_mean)

    def test_summary_point_window_t0_equals_t1(self):
        ts = TimeSeries("util")
        ts.record(0.0, 10.0)
        ts.record(1.0, 30.0)
        ts.record(2.0, 50.0)
        s = ts.summary(1.0, 1.0)
        # exactly one sample falls on the instant; stats degrade gracefully
        assert s.count == 1
        assert s.mean == 30.0
        assert s.time_weighted_mean == 30.0

    def test_summary_point_window_off_sample_is_empty(self):
        ts = TimeSeries("util")
        ts.record(0.0, 10.0)
        ts.record(2.0, 50.0)
        s = ts.summary(1.0, 1.0)
        assert s.count == 0
        assert np.isnan(s.mean)

    def test_resample_before_first_sample_is_nan(self):
        ts = TimeSeries("util")
        ts.record(5.0, 42.0)
        out = ts.resample([0.0, 4.9, 5.0, 6.0])
        assert np.isnan(out[0]) and np.isnan(out[1])
        assert out[2] == 42.0 and out[3] == 42.0

    def test_counter_window_before_first_increment(self):
        c = CounterMonitor()
        c.add(10.0, 100.0)
        assert c.total_between(0.0, 5.0) == pytest.approx(50.0)
        # rate over a real window is finite even with no increment event
        # inside it (growth is linearly interpolated)
        c2 = CounterMonitor()
        c2.add(100.0, 1000.0)
        assert c2.mean_rate(0.0, 10.0) == pytest.approx(10.0)

    def test_counter_zero_length_window_total_is_zero(self):
        c = CounterMonitor()
        c.add(1.0, 100.0)
        assert c.total_between(1.0, 1.0) == 0.0
        assert math.isnan(c.mean_rate(1.0, 1.0))

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_mean_rate_never_raises_zero_division(self, t):
        c = CounterMonitor()
        c.add(t, 10.0)
        value = c.mean_rate(t, t)
        assert math.isnan(value)
