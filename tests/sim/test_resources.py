"""Unit tests for repro.sim.resources."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


def test_resource_serializes_access():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(name, hold):
        req = res.request()
        yield req
        log.append(("start", name, env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append(("end", name, env.now))

    env.process(user("a", 2.0))
    env.process(user("b", 3.0))
    env.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 5.0),
    ]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def user(name):
        with res.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(1.0)

    for name in "abc":
        env.process(user(name))
    env.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_count_tracks_usage():
    env = Environment()
    res = Resource(env, capacity=2)

    def user():
        with res.request() as req:
            yield req
            assert res.count >= 1
            yield env.timeout(1.0)

    env.process(user())
    env.run()
    assert res.count == 0


def test_release_without_holding_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def bad():
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    env.run(until=env.process(bad()))


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def waiter(name, prio, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder())
    env.process(waiter("low", 5, 1.0))
    env.process(waiter("high", 1, 2.0))
    env.process(waiter("mid", 3, 3.0))
    env.run()
    assert order == ["high", "mid", "low"]


def test_request_cancel_removes_from_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def impatient():
        yield env.timeout(1.0)
        req = res.request()
        result = yield req | env.timeout(2.0)
        if req not in result:
            req.cancel()
            got.append("gave up")
        else:
            res.release(req)
            got.append("served")

    def patient():
        yield env.timeout(1.5)
        req = res.request()
        yield req
        got.append(("patient", env.now))
        res.release(req)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert "gave up" in got
    assert ("patient", 10.0) in got


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100.0, init=10.0)
    log = []

    def producer():
        for _ in range(3):
            yield env.timeout(1.0)
            yield tank.put(30.0)

    def consumer():
        yield tank.get(80.0)
        log.append(env.now)

    env.process(producer())
    env.process(consumer())
    env.run()
    # Needs 80: 10 initial + 30 + 30 + 30 -> available at t=3
    assert log == [3.0]
    assert tank.level == pytest.approx(20.0)


def test_container_capacity_blocks_put():
    env = Environment()
    tank = Container(env, capacity=50.0, init=40.0)
    log = []

    def producer():
        yield tank.put(20.0)  # blocks until space
        log.append(("put", env.now))

    def consumer():
        yield env.timeout(2.0)
        yield tank.get(30.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put", 2.0)]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=-1)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in ["x", "y", "z"]:
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for item, _ in got] == ["x", "y", "z"]


def test_store_capacity_backpressure():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("first")
        log.append(("put1", env.now))
        yield store.put("second")
        log.append(("put2", env.now))

    def consumer():
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put1", 0.0), ("put2", 5.0)]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(4.0)
        yield store.put(99)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(99, 4.0)]


def test_filter_store_selects_matching():
    env = Environment()
    store = FilterStore(env)
    got = []

    def producer():
        for item in [1, 2, 3, 4]:
            yield store.put(item)

    def consumer():
        even = yield store.get(lambda x: x % 2 == 0)
        got.append(even)
        odd = yield store.get(lambda x: x % 2 == 1)
        got.append(odd)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [2, 1]
    assert sorted(store.items) == [3, 4]


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda x: x == "special")
        got.append((item, env.now))

    def producer():
        yield store.put("ordinary")
        yield env.timeout(3.0)
        yield store.put("special")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("special", 3.0)]
    assert list(store.items) == ["ordinary"]


def test_store_len():
    env = Environment()
    store = Store(env)

    def fill():
        yield store.put("a")
        yield store.put("b")

    env.run(until=env.process(fill()))
    assert len(store) == 2
