"""Kernel micro-optimizations must not change observable semantics.

The hot-path classes use ``__slots__`` and the scheduler uses a plain
integer sequence instead of ``itertools.count`` — these pin the
allocation profile and re-check the ordering contract the doctests
document.
"""

import doctest

import pytest

import repro.sim.core as core
from repro.sim.core import Environment, Event, Process, Timeout


def test_hot_path_classes_have_no_instance_dict():
    env = Environment()
    event = Event(env)
    timeout = env.timeout(1.0)

    def proc():
        yield env.timeout(0.0)

    process = env.process(proc())
    for obj in (event, timeout, process):
        with pytest.raises(AttributeError):
            obj.__dict__
        with pytest.raises(AttributeError):
            obj.scratch = 1  # no accidental attribute creation


def test_ordering_doctests_still_pass():
    results = doctest.testmod(core)
    assert results.attempted > 0
    assert results.failed == 0


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def waiter(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(8):
        env.process(waiter(tag))
    env.run()
    assert order == list(range(8))


def test_urgent_beats_normal_at_same_instant():
    env = Environment()
    order = []

    def sleeper():
        yield env.timeout(1.0)
        order.append("timeout")

    def succeeder(event):
        yield env.timeout(1.0)
        event.succeed()

    event = Event(env)
    event.callbacks.append(lambda _e: order.append("succeed"))
    env.process(sleeper())
    env.process(succeeder(event))
    env.run()
    assert order == ["timeout", "succeed"]


def test_event_ids_stay_monotonic_across_many_schedules():
    env = Environment()
    for _ in range(3):
        env.run(env.timeout(1.0))
    first = env._eid
    env.run(env.timeout(1.0))
    assert env._eid > first
