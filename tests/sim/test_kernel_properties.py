"""Property-based tests on discrete-event kernel invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource, Store


class TestEventOrdering:
    @settings(max_examples=30, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                           min_size=1, max_size=30))
    def test_completion_order_matches_sorted_delays(self, delays):
        env = Environment()
        log = []

        def proc(i, d):
            yield env.timeout(d)
            log.append((env.now, i))

        for i, d in enumerate(delays):
            env.process(proc(i, d))
        env.run()
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert len(log) == len(delays)

    @settings(max_examples=30, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=50.0),
                           min_size=1, max_size=20))
    def test_clock_never_goes_backward(self, delays):
        env = Environment()
        observed = []

        def proc(d):
            yield env.timeout(d)
            observed.append(env.now)
            yield env.timeout(d)
            observed.append(env.now)

        for d in delays:
            env.process(proc(d))
        env.run()
        assert observed == sorted(observed)

    @settings(max_examples=20, deadline=None)
    @given(
        delays=st.lists(st.floats(min_value=0.1, max_value=10.0),
                        min_size=2, max_size=10),
        seed=st.randoms(),
    )
    def test_determinism_independent_of_creation_order_values(self, delays,
                                                              seed):
        """Two environments running the same schedule agree exactly."""

        def run_once():
            env = Environment()
            log = []

            def proc(i, d):
                yield env.timeout(d)
                log.append((env.now, i))

            for i, d in enumerate(delays):
                env.process(proc(i, d))
            env.run()
            return log

        assert run_once() == run_once()


class TestResourceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        holds=st.lists(st.floats(min_value=0.1, max_value=5.0),
                       min_size=1, max_size=12),
    )
    def test_makespan_bounds(self, capacity, holds):
        """Total time within [sum/capacity, sum] for a shared resource."""
        env = Environment()
        res = Resource(env, capacity=capacity)

        def user(h):
            with res.request() as req:
                yield req
                yield env.timeout(h)

        for h in holds:
            env.process(user(h))
        env.run()
        total = sum(holds)
        assert env.now >= total / capacity - 1e-9
        assert env.now <= total + 1e-9
        assert res.count == 0

    @settings(max_examples=25, deadline=None)
    @given(items=st.lists(st.integers(), min_size=1, max_size=30))
    def test_store_fifo_preserves_order(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items
