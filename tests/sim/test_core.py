"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_ordering():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("late", 5.0))
    env.process(worker("early", 1.0))
    env.process(worker("mid", 2.5))
    env.run()
    assert log == [(1.0, "early"), (2.5, "mid"), (5.0, "late")]


def test_same_time_events_fifo():
    env = Environment()
    log = []

    def worker(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_zero_delay_timeout():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(0.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    proc = env.process(parent())
    result = env.run(until=proc)
    assert result == 43
    assert env.now == 2.0


def test_env_exit_legacy_spelling():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        env.exit("done")

    result = env.run(until=env.process(child()))
    assert result == "done"


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    env.process(ticker())
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_event_succeed_value_propagates():
    env = Environment()
    evt = env.event()
    got = []

    def waiter():
        value = yield evt
        got.append(value)

    env.process(waiter())

    def trigger():
        yield env.timeout(3.0)
        evt.succeed("payload")

    env.process(trigger())
    env.run()
    assert got == ["payload"]


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_raises_in_process():
    env = Environment()
    caught = []

    def waiter(evt):
        try:
            yield evt
        except RuntimeError as exc:
            caught.append(str(exc))

    evt = env.event()
    env.process(waiter(evt))

    def trigger():
        yield env.timeout(1.0)
        evt.fail(RuntimeError("boom"))

    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_failed_process_awaited_reraises_in_parent():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise KeyError("inner")

    def parent():
        try:
            yield env.process(bad())
        except KeyError:
            return "caught"

    result = env.run(until=env.process(parent()))
    assert result == "caught"


def test_all_of_waits_for_all():
    env = Environment()

    def worker(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        a = env.process(worker(1.0, "a"))
        b = env.process(worker(3.0, "b"))
        results = yield env.all_of([a, b])
        return sorted(results.values_list())

    result = env.run(until=env.process(parent()))
    assert result == ["a", "b"]
    assert env.now == 3.0


def test_any_of_fires_on_first():
    env = Environment()

    def worker(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        a = env.process(worker(1.0, "fast"))
        b = env.process(worker(9.0, "slow"))
        results = yield env.any_of([a, b])
        return list(results.values_list())

    result = env.run(until=env.process(parent()))
    assert result == ["fast"]
    assert env.now == 1.0


def test_and_or_operators():
    env = Environment()

    def parent():
        t1 = env.timeout(1.0, value="x")
        t2 = env.timeout(2.0, value="y")
        yield t1 & t2
        assert env.now == 2.0
        t3 = env.timeout(1.0, value="p")
        t4 = env.timeout(5.0, value="q")
        yield t3 | t4
        assert env.now == 3.0

    env.run(until=env.process(parent()))


def test_all_of_empty_fires_immediately():
    env = Environment()

    def parent():
        yield env.all_of([])
        return env.now

    assert env.run(until=env.process(parent())) == 0.0


def test_interrupt_delivery_and_cause():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(2.0)
        proc.interrupt(cause="wakeup")

    env.process(interrupter())
    env.run()
    assert log == [(2.0, "wakeup")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_rewait_original_event():
    env = Environment()
    log = []

    def sleeper():
        deadline = env.timeout(10.0)
        try:
            yield deadline
        except Interrupt:
            log.append(("interrupted", env.now))
            yield deadline
            log.append(("resumed", env.now))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(4.0)
        proc.interrupt()

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", 4.0), ("resumed", 10.0)]


def test_peek_and_step():
    env = Environment()

    def proc():
        yield env.timeout(7.0)

    env.process(proc())
    assert env.peek() == 0.0
    env.run()
    assert env.peek() == float("inf")


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.ok


def test_active_process_tracking():
    env = Environment()
    observed = []

    def proc():
        observed.append(env.active_process)
        yield env.timeout(1.0)

    p = env.process(proc())
    env.run()
    assert observed == [p]
    assert env.active_process is None


def test_run_until_event_never_fires():
    env = Environment()
    evt = env.event()
    with pytest.raises(SimulationError):
        env.run(until=evt)


def test_nested_process_chain_timing():
    env = Environment()

    def leaf():
        yield env.timeout(1.0)
        return 1

    def mid():
        v = yield env.process(leaf())
        yield env.timeout(1.0)
        return v + 1

    def root():
        v = yield env.process(mid())
        yield env.timeout(1.0)
        return v + 1

    assert env.run(until=env.process(root())) == 3
    assert env.now == 3.0
