"""Tests for the seeded synthetic job-trace generator."""

import pytest

from repro.fleet import JobRequest, TraceConfig, generate_trace
from repro.workloads import get_benchmark


def test_trace_is_deterministic_per_seed():
    assert generate_trace(jobs=12, seed=7) == generate_trace(jobs=12,
                                                             seed=7)


def test_different_seeds_differ():
    assert generate_trace(jobs=12, seed=0) != generate_trace(jobs=12,
                                                             seed=1)


def test_trace_shape():
    trace = generate_trace(jobs=10, seed=3)
    assert len(trace) == 10
    assert [r.job_id for r in trace] == list(range(10))
    arrivals = [r.arrival for r in trace]
    assert arrivals == sorted(arrivals)
    assert all(r.arrival > 0 for r in trace)


def test_draws_come_from_the_configured_mixes():
    config = TraceConfig(jobs=60, seed=5)
    trace = generate_trace(config)
    sizes = {size for size, _ in config.gpu_mix}
    strategies = {key for key, _ in config.strategy_mix}
    lo, hi = config.sim_steps
    for req in trace:
        assert req.gpus in sizes
        assert req.strategy in strategies
        assert req.benchmark in config.benchmarks
        assert lo <= req.sim_steps <= hi


def test_small_jobs_dominate_by_count():
    trace = generate_trace(jobs=200, seed=11)
    small = sum(1 for r in trace if r.gpus <= 2)
    assert small > len(trace) / 2


def test_global_batch_scales_with_world_size():
    trace = generate_trace(jobs=40, seed=2)
    for req in trace:
        per_gpu = max(1, get_benchmark(req.benchmark).global_batch // 8)
        assert req.global_batch == per_gpu * req.gpus


def test_config_overrides_on_top_of_explicit_config():
    config = TraceConfig(jobs=5, seed=1, mean_interarrival=2.0)
    trace = generate_trace(config, jobs=3)
    assert len(trace) == 3
    # The rest of the config survived the override.
    assert trace == generate_trace(jobs=3, seed=1, mean_interarrival=2.0)


@pytest.mark.parametrize("kwargs", [
    {"jobs": 0},
    {"mean_interarrival": 0.0},
    {"gpu_mix": ((1, 0.5), (2, 0.6))},
    {"strategy_mix": (("ddp", 0.5),)},
])
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        TraceConfig(**kwargs)


def test_requests_are_frozen():
    (req,) = generate_trace(jobs=1, seed=0)
    assert isinstance(req, JobRequest)
    with pytest.raises(AttributeError):
        req.gpus = 99
