"""Tests for the FIFO cluster scheduler over a composable fleet."""

import pytest

from repro.core import ComposableFleet, FleetSpec
from repro.fleet import ClusterScheduler, JobRequest, generate_trace


SMALL = FleetSpec(name="small", chassis=2, hosts=2, gpus_per_chassis=4)


def make_fleet(spec=SMALL):
    return ComposableFleet(spec)


def request(job_id, arrival, gpus, *, benchmark="mobilenetv2",
            strategy="ddp", sim_steps=2, global_batch=None):
    return JobRequest(job_id=job_id, arrival=arrival, gpus=gpus,
                      benchmark=benchmark, strategy=strategy,
                      sim_steps=sim_steps,
                      global_batch=global_batch or 8 * gpus)


def test_empty_trace_returns_empty_result():
    result = ClusterScheduler(make_fleet()).run([])
    assert result.records == []
    assert result.makespan == 0.0
    assert result.gpu_utilization == 0.0


def test_single_job_completes():
    fleet = make_fleet()
    result = ClusterScheduler(fleet).run([request(0, 0.0, 2)])
    (rec,) = result.records
    assert rec.job_id == 0
    assert rec.queue_delay == pytest.approx(0.0)
    # Hot-plug enumeration precedes training.
    assert rec.started == pytest.approx(rec.placed + 4.0)
    assert rec.finished > rec.started
    assert rec.step_time > 0
    assert not rec.cross_chassis
    assert result.makespan == pytest.approx(rec.finished)


def test_all_gpus_released_after_run():
    fleet = make_fleet()
    ClusterScheduler(fleet).run(generate_trace(
        jobs=5, seed=1, mean_interarrival=1.0, sim_steps=(2, 2)))
    assert len(fleet.free_gpus()) == fleet.spec.total_gpus
    # Visiting-host ports are all returned: only home cablings remain.
    for falcon in fleet.falcons:
        assert set(falcon.port_map) == {"H1", "H2"}


def test_fifo_queueing_when_fleet_full():
    fleet = make_fleet()
    result = ClusterScheduler(fleet).run([
        request(0, 0.0, 8),   # takes the whole fleet
        request(1, 0.0, 1),   # must wait behind it (FIFO, no backfill)
    ])
    rec0, rec1 = result.records
    assert rec0.queue_delay == pytest.approx(0.0)
    assert rec1.placed >= rec0.finished
    assert rec1.queue_delay > 0
    assert result.max_queue_delay == pytest.approx(rec1.queue_delay)


def test_single_chassis_packing_preferred():
    fleet = make_fleet()
    result = ClusterScheduler(fleet).run([request(0, 0.0, 4)])
    (rec,) = result.records
    # 4 GPUs fit in one chassis, so no cross-chassis ring is composed.
    assert len(rec.chassis) == 1


def test_cross_chassis_spread_when_no_chassis_fits():
    fleet = make_fleet()  # 4 GPUs per chassis
    result = ClusterScheduler(fleet).run([request(0, 0.0, 6)])
    (rec,) = result.records
    assert rec.cross_chassis
    assert rec.chassis == (0, 1)
    assert len(rec.gpu_names) == 6


def test_cross_chassis_job_pays_spine_crossing():
    """The same 2-GPU job is slower across chassis than in one drawer."""
    # Packed: both GPUs share falcon0/drawer0's PCIe switch — the ring
    # never leaves the drawer.
    packed = ClusterScheduler(make_fleet()).run(
        [request(0, 0.0, 2)]).records[0]
    # One GPU per chassis forces the ring over the spine.
    spread_spec = FleetSpec(name="spread", chassis=2, hosts=2,
                            gpus_per_chassis=1)
    spread = ClusterScheduler(make_fleet(spread_spec)).run(
        [request(0, 0.0, 2)]).records[0]
    assert spread.cross_chassis and not packed.cross_chassis
    assert spread.step_time > packed.step_time


def test_utilization_and_spine_traffic_observed():
    fleet = make_fleet()
    result = ClusterScheduler(fleet).run(generate_trace(
        jobs=6, seed=0, mean_interarrival=1.0, sim_steps=(2, 3)))
    assert len(result.records) == 6
    assert 0.0 < result.gpu_utilization <= 1.0
    traffic = result.spine_traffic()
    assert sum(t["to_spine_gbs"] + t["from_spine_gbs"]
               for t in traffic.values()) > 0.0


def test_oversized_job_rejected():
    with pytest.raises(ValueError, match="fleet has"):
        ClusterScheduler(make_fleet()).run([request(0, 0.0, 99)])


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown strategy"):
        ClusterScheduler(make_fleet()).run(
            [request(0, 0.0, 1, strategy="zero-redundancy")])


def test_records_sorted_by_job_id_regardless_of_finish_order():
    fleet = make_fleet()
    result = ClusterScheduler(fleet).run([
        request(0, 0.0, 2, sim_steps=4),   # long
        request(1, 0.0, 1, sim_steps=2),   # short, finishes first
    ])
    assert [r.job_id for r in result.records] == [0, 1]


def test_result_as_dict_round_trip():
    result = ClusterScheduler(make_fleet()).run([request(0, 0.0, 1)])
    report = result.as_dict()
    assert report["jobs"] == 1
    assert report["total_gpus"] == 8
    assert report["records"][0]["job_id"] == 0
    assert set(report["spine_traffic_gbs"]) == {
        "uplink/host0", "uplink/host1",
        "trunk/falcon0/drawer0", "trunk/falcon0/drawer1",
        "trunk/falcon1/drawer0", "trunk/falcon1/drawer1",
    }
