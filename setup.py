"""Legacy setup shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` (or plain ``pip install -e .``
falling back to the legacy path) work.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
