"""Fig. 16 — impact of software-level DL optimizations on BERT-large
fine-tuning (SQuAD).

Variants: DataParallel / DistributedDataParallel x FP32 / FP16-mixed,
plus ZeRO-style sharded training (which lifts the per-GPU batch from 6 to
10).  Paper claims to hold:

- mixed precision: >50% training-time reduction everywhere, >70% on
  falcon-attached GPUs;
- DDP over DP: large additional speedup, >80% on local GPUs;
- sharding: batch 6 -> 10 and additional speedup on top of DDP-FP16.
"""

import pytest
from conftest import emit

from repro.devices import V100_SXM2_16GB
from repro.experiments import render_table, software_optimization_study, \
    time_reduction_pct
from repro.training import AMP_POLICY, DistributedDataParallel, \
    ShardedDataParallel
from repro.workloads import bert_large


def test_fig16_software_optimizations(benchmark):
    study = benchmark.pedantic(
        lambda: software_optimization_study(sim_steps=5),
        rounds=1, iterations=1)

    rows = []
    for variant in study["localGPUs"]:
        rows.append((variant,
                     round(study["localGPUs"][variant] * 1e3, 3),
                     round(study["falconGPUs"][variant] * 1e3, 3)))
    emit(render_table(
        ["Variant", "localGPUs ms/sample", "falconGPUs ms/sample"],
        rows,
        title="Fig 16: Software-level Optimizations on BERT-large",
    ))

    for config, variants in study.items():
        fp16_gain = time_reduction_pct(variants["DDP-FP32"],
                                       variants["DDP-FP16"])
        # Mixed precision: >50% reduction in all cases...
        assert fp16_gain > 50.0, config
    # ...and more than 70% on falcon-attached GPUs.
    falcon_fp16 = time_reduction_pct(study["falconGPUs"]["DDP-FP32"],
                                     study["falconGPUs"]["DDP-FP16"])
    assert falcon_fp16 > 70.0

    # DDP over DP: >80% on locally-attached GPUs.
    ddp_gain = time_reduction_pct(study["localGPUs"]["DP-FP16"],
                                  study["localGPUs"]["DDP-FP16"])
    assert ddp_gain > 75.0

    # Sharding helps on top of DDP-FP16 (most where communication-bound).
    for config in study:
        assert study[config]["Sharded-FP16"] <= \
            study[config]["DDP-FP16"] * 1.01, config
    sharded_falcon = time_reduction_pct(study["falconGPUs"]["DDP-FP16"],
                                        study["falconGPUs"]["Sharded-FP16"])
    assert sharded_falcon > 15.0

    # The memory story: sharding lifts the feasible batch from 6 to 10.
    model = bert_large()
    cap = V100_SXM2_16GB.memory_bytes
    assert DistributedDataParallel().max_batch_per_gpu(
        model, AMP_POLICY, cap, 8) == 6
    assert ShardedDataParallel().max_batch_per_gpu(
        model, AMP_POLICY, cap, 8) == 10
