"""Ablation — NCCL ring order over the NVLink hybrid cube mesh.

DESIGN.md design choice: local rings follow a Hamiltonian cycle over
NVLink edges (every hop one NVLink link).  The naive alternative —
enumeration order 0..7 — forces several hops onto the PCIe tree, which
both slows the hop and contends with H2D traffic.  This quantifies why
NCCL builds topology-aware rings.
"""

from conftest import emit

from repro import ComposableSystem
from repro.experiments import render_table
from repro.fabric import RING_ORDER
from repro.training import DistributedDataParallel, TrainingConfig, \
    TrainingJob
from repro.workloads import get_benchmark


def step_time_with_order(order) -> float:
    system = ComposableSystem()
    gpus = [system.host.gpus[i] for i in order]
    config = TrainingConfig(
        benchmark=get_benchmark("bert-large"),
        strategy=DistributedDataParallel(),
        sim_steps=6)
    job = TrainingJob(system.env, system.topology, system.host, gpus,
                      system.host.scratch, config)
    return job.run().step_time


def test_ablation_ring_order(benchmark):
    aware = benchmark.pedantic(
        lambda: step_time_with_order(RING_ORDER), rounds=1, iterations=1)
    naive = step_time_with_order(range(8))

    emit(render_table(
        ["Ring order", "Step ms"],
        [("NVLink Hamiltonian " + str(tuple(RING_ORDER)),
          round(aware * 1e3, 1)),
         ("naive 0..7", round(naive * 1e3, 1))],
        title="Ablation: ring order on the hybrid cube mesh "
              "(BERT-large, localGPUs)",
    ))

    # Topology-aware rings are decisively faster for the comm-bound case.
    assert naive > 1.15 * aware
