"""Fig. 13 — CPU utilization of the DL benchmarks across configurations.

Paper observations: the benchmarks do not stress the CPU cores overall;
the vision benchmarks exercise the host CPUs much more than the NLP
benchmarks (image decode/crop/resize/normalize is CPU-side), and the
behaviour is similar across GPU configurations.
"""

from conftest import SIM_STEPS, emit

from repro.experiments import render_table, run_configuration, \
    telemetry_rows
from repro.experiments.sweeps import GPU_CONFIGS


def test_fig13_cpu_utilization(benchmark, gpu_sweep):
    emit(render_table(
        ["Benchmark", *GPU_CONFIGS],
        telemetry_rows(gpu_sweep, "cpu_utilization"),
        title="Fig 13: CPU Utilization %",
    ))

    cpu = {key: by_config["localGPUs"].cpu_utilization
           for key, by_config in gpu_sweep.items()}

    # Vision >> NLP: preprocessing happens on the CPU.
    for vision_key in ("mobilenetv2", "resnet50", "yolov5l"):
        for nlp_key in ("bert-base", "bert-large"):
            assert cpu[vision_key] > 5 * cpu[nlp_key], \
                (vision_key, nlp_key)

    # NLP barely touches the CPUs (pre-tokenized features).
    assert cpu["bert-base"] < 5.0
    assert cpu["bert-large"] < 5.0

    # Similar behaviour across configurations.
    for key, by_config in gpu_sweep.items():
        values = [rec.cpu_utilization for rec in by_config.values()]
        assert max(values) - min(values) < 15.0, key

    benchmark.pedantic(
        lambda: run_configuration("mobilenetv2", "localGPUs",
                                  sim_steps=SIM_STEPS),
        rounds=1, iterations=1)
