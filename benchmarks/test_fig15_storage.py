"""Fig. 15 — percentage change of training time with Falcon-attached and
local NVMe storage (GPUs always local).

Paper observations: attaching NVMe accelerates training for the large
models (BERT, YOLO) by improving data-loading/checkpoint speed; the
PCIe-switching overhead of the falcon-attached NVMe is small (falconNVMe
tracks localNVMe closely).
"""

from conftest import SIM_STEPS, emit

from repro.experiments import relative_time_rows, render_table, \
    run_configuration


def test_fig15_storage_configurations(benchmark, storage_sweep):
    rows = relative_time_rows(storage_sweep)
    emit(render_table(
        ["Benchmark", "localNVMe %", "falconNVMe %"],
        rows,
        title="Fig 15: % Change of Training Time vs localGPUs (storage)",
    ))

    pct = {key: {cfg: rec.pct_change_vs(by_config["localGPUs"])
                 for cfg, rec in by_config.items() if cfg != "localGPUs"}
           for key, by_config in storage_sweep.items()}

    # NVMe never hurts, and it helps the BERT benchmarks the most
    # (multi-GB checkpoints; paper: "additional acceleration ... for
    # large models such as BERT and Yolo").
    for key, changes in pct.items():
        assert changes["localNVMe"] <= 0.5, key
        assert changes["falconNVMe"] <= 0.5, key
    assert pct["bert-large"]["localNVMe"] < -3.0
    assert pct["bert-base"]["localNVMe"] < -3.0
    assert pct["bert-large"]["localNVMe"] < pct["resnet50"]["localNVMe"]

    # Falcon-attached NVMe tracks local NVMe (small switching overhead).
    for key, changes in pct.items():
        assert abs(changes["falconNVMe"] - changes["localNVMe"]) < 2.0, key
        # ...but the falcon path is never *faster* than local.
        assert changes["falconNVMe"] >= changes["localNVMe"] - 0.1, key

    benchmark.pedantic(
        lambda: run_configuration("bert-large", "falconNVMe",
                                  sim_steps=SIM_STEPS),
        rounds=1, iterations=1)
