"""Fig. 14 — system memory utilization across configurations.

Paper observations: none of the benchmarks stress the 756 GB hosts; the
vision benchmarks hold more host memory than the NLP ones (page-cached
image datasets and decoded-batch buffers vs tiny tokenized features).
"""

from conftest import SIM_STEPS, emit

from repro.experiments import render_table, run_configuration, \
    telemetry_rows
from repro.experiments.sweeps import GPU_CONFIGS


def test_fig14_system_memory(benchmark, gpu_sweep):
    emit(render_table(
        ["Benchmark", *GPU_CONFIGS],
        telemetry_rows(gpu_sweep, "host_memory"),
        title="Fig 14: System Memory Utilization %",
    ))

    mem = {key: by_config["localGPUs"].host_memory
           for key, by_config in gpu_sweep.items()}

    # Nobody stresses the system memory.
    for key, value in mem.items():
        assert value < 40.0, key

    # ImageNet-scale page cache: vision above NLP.
    assert mem["resnet50"] > mem["bert-large"]
    assert mem["mobilenetv2"] > mem["bert-base"]

    # Configuration-independent (within sampling noise).
    for key, by_config in gpu_sweep.items():
        values = [rec.host_memory for rec in by_config.values()]
        assert max(values) - min(values) < 5.0, key

    benchmark.pedantic(
        lambda: run_configuration("bert-base", "localGPUs",
                                  sim_steps=SIM_STEPS),
        rounds=1, iterations=1)
