"""Fig. 5 — communications requirements of disaggregation.

Static table from the paper (sourced from [1]); cross-checked against the
latency ordering of our own link catalog, and the benchmark times the
fabric-level path computations the ordering is derived from.
"""

from conftest import emit

from repro import COMM_REQUIREMENTS
from repro.experiments import render_table
from repro.fabric import (
    DDR4_CHANNEL,
    NVLINK2_X1,
    PCIE_GEN4_X16,
    SATA3,
    Topology,
)
from repro.sim import Environment


def test_fig5_comm_requirements(benchmark):
    emit(render_table(
        ["Communication", "Latency", "Bandwidth", "Link Length"],
        [(r.path, r.latency, r.bandwidth, r.link_length)
         for r in COMM_REQUIREMENTS],
        title="Fig 5: Communications Requirements",
    ))
    assert [r.path for r in COMM_REQUIREMENTS] == [
        "CPU - CPU", "CPU - Memory", "CPU - Disk"]

    # Our link catalog reproduces the ordering: memory-class latencies far
    # below PCIe-class, far below disk-class.
    assert DDR4_CHANNEL.latency < NVLINK2_X1.latency
    assert NVLINK2_X1.latency < SATA3.latency
    assert PCIE_GEN4_X16.latency < SATA3.latency / 10

    def measure_paths():
        env = Environment()
        topo = Topology(env)
        topo.add_node("cpu", kind="rc", transit=True)
        topo.add_node("mem", kind="dram")
        topo.add_node("disk", kind="storage")
        topo.add_link(DDR4_CHANNEL, "cpu", "mem")
        topo.add_link(SATA3, "cpu", "disk")
        return (topo.path_latency("cpu", "mem"),
                topo.path_latency("cpu", "disk"))

    mem_lat, disk_lat = benchmark.pedantic(measure_paths, rounds=5,
                                           iterations=1)
    assert disk_lat > mem_lat
