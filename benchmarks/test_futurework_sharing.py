"""Future-work experiments (paper §VI): advanced mode, dynamic
reconfiguration, degraded fabric, and the topology recommender.

Not a paper figure — the paper explicitly defers these — but DESIGN.md
commits to implementing the optional/extension agenda, and these runs
document the system-level conclusions the platform is built to produce.
"""

from conftest import emit

from repro.experiments import (
    TopologyRecommender,
    degraded_uplink_study,
    reconfiguration_study,
    render_table,
    ring_placement_study,
    tenancy_isolation_study,
)


def test_futurework_advanced_mode_and_reconfiguration(benchmark):
    iso = benchmark.pedantic(
        lambda: tenancy_isolation_study(sim_steps=5),
        rounds=1, iterations=1)
    place = ring_placement_study(sim_steps=5)
    reconf = reconfiguration_study(sim_steps=5)
    degraded = degraded_uplink_study(sim_steps=8)

    emit(render_table(
        ["Study", "Metric", "Value"],
        [
            ("tenant isolation", "interference %",
             round(iso.interference_pct, 2)),
            ("ring placement", "crossing penalty %",
             round(place.crossing_penalty_pct, 1)),
            ("ring placement", "shared-crossing interference %",
             round(place.interference_pct, 1)),
            ("reconfiguration", "seconds for 2 GPUs",
             round(reconf.reconfiguration_seconds, 1)),
            ("reconfiguration", "breakeven seconds",
             round(reconf.breakeven_seconds, 1)),
            ("degraded H1 cable (x8)", "BERT-L falcon slowdown %",
             round(degraded.slowdown_pct, 1)),
        ],
        title="Future-work studies: advanced mode / reconfiguration / "
              "resilience",
    ))

    assert abs(iso.interference_pct) < 2.0
    assert place.crossing_penalty_pct > 5.0
    assert place.interference_pct > 20.0
    assert reconf.breakeven_seconds < 60.0
    assert degraded.slowdown_pct > 20.0


def test_futurework_topology_recommender(benchmark):
    recommender = TopologyRecommender()
    rec_vision = benchmark.pedantic(
        lambda: recommender.evaluate("resnet50", sim_steps=6),
        rounds=1, iterations=1)
    rec_nlp = recommender.evaluate("bert-large", sim_steps=6)

    for rec in (rec_vision, rec_nlp):
        emit(render_table(
            ["Configuration", "Total s", "Samples/s", "Cost",
             "Slowdown %", "Tput/cost", "Note"],
            rec.table_rows(),
            title=f"Recommendation for {rec.benchmark}: "
                  f"{rec.recommended}",
        ))

    # The paper's conclusion, automated: composable GPUs for vision,
    # NVLink-attached for the big NLP model.
    assert rec_vision.recommended == "falconGPUs"
    assert rec_nlp.recommended == "localGPUs"
