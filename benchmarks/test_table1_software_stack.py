"""Table I — software stack details.

Static reproduction: the stack whose behaviour the simulation models.
The benchmark times constructing a full composable system (the substrate
every experiment builds on).
"""

from conftest import emit

from repro import ComposableSystem, SOFTWARE_STACK
from repro.experiments import render_table


def test_table1_software_stack(benchmark):
    table = render_table(
        ["Component", "Version"],
        sorted(SOFTWARE_STACK.items()),
        title="Table I: Software Stack Details",
    )
    emit(table)
    assert SOFTWARE_STACK["DL Framework"] == "PyTorch 1.7.1"
    assert SOFTWARE_STACK["NCCL"] == "NCCL 2.8.4"
    assert "Ubuntu 18.04" in SOFTWARE_STACK["Operating system"]

    # Time the system bring-up that substitutes for this stack.
    benchmark.pedantic(ComposableSystem, rounds=3, iterations=1)
