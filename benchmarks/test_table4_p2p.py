"""Table IV — GPU-GPU bandwidth, latency, and protocol.

The p2pBandwidthLatencyTest analog over the three pair classes.  The
paper's measured values and ours:

====  ============  =======  ==========
Pair  BW (GB/s)     Lat(us)  Protocol
====  ============  =======  ==========
L-L   72.37          1.85    NVLink
F-L   19.64          2.66    PCI-e 4.0
F-F   24.47          2.08    PCI-e 4.0
====  ============  =======  ==========
"""

import pytest
from conftest import emit

from repro.experiments import render_table, table4

PAPER = {
    "L-L": (72.37, 1.85, "NVLink"),
    "F-L": (19.64, 2.66, "PCI-e 4.0"),
    "F-F": (24.47, 2.08, "PCI-e 4.0"),
}


def test_table4_p2p_bandwidth_latency(benchmark):
    results = benchmark.pedantic(table4, rounds=1, iterations=1)

    rows = []
    for pair in ("L-L", "F-L", "F-F"):
        r = results[pair]
        paper_bw, paper_lat, paper_proto = PAPER[pair]
        rows.append((pair, round(r.bidirectional_bandwidth_gbs, 2),
                     paper_bw, round(r.p2p_write_latency_us, 2), paper_lat,
                     r.protocol))
    emit(render_table(
        ["Pair", "BW GB/s", "paper", "Latency us", "paper", "Protocol"],
        rows,
        title="Table IV: GPU-GPU Bandwidth, Latency, and Protocol",
    ))

    for pair, (paper_bw, paper_lat, paper_proto) in PAPER.items():
        r = results[pair]
        assert r.bidirectional_bandwidth_gbs == pytest.approx(paper_bw,
                                                              rel=0.05)
        assert r.p2p_write_latency_us == pytest.approx(paper_lat, rel=0.05)
        assert r.protocol == paper_proto

    # Shape: L-L is ~3x F-F and ~4x F-L (paper's headline observation).
    ll = results["L-L"].bidirectional_bandwidth_gbs
    assert ll / results["F-F"].bidirectional_bandwidth_gbs == \
        pytest.approx(3.0, rel=0.15)
    assert ll / results["F-L"].bidirectional_bandwidth_gbs == \
        pytest.approx(4.0, rel=0.15)
