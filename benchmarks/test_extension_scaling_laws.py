"""Extension — what actually drives the Fig. 11 size-overhead correlation.

The paper: "We can see the correlation between the overhead and the size
of the model."  These parametric sweeps decompose that correlation:

1. at a *fixed* per-GPU batch, falcon overhead is roughly flat-to-falling
   in model size (the fixed-vocabulary embedding table keeps small
   transformers relatively communication-bound);
2. overhead collapses as the per-GPU batch grows (compute scales with
   the batch, gradient volume does not);
3. therefore the observed correlation is mediated by device memory:
   bigger models are forced to smaller batches, which is what raises
   their communication-to-compute ratio on the slow fabric.
"""

from conftest import emit

from repro.experiments import (
    overhead_vs_batch,
    overhead_vs_model_size,
    render_table,
)


def test_extension_overhead_scaling(benchmark):
    depth_points = benchmark.pedantic(
        lambda: overhead_vs_model_size(layer_counts=(4, 12, 24),
                                       sim_steps=5),
        rounds=1, iterations=1)
    batch_points = overhead_vs_batch(batches=(2, 4, 6), sim_steps=5)

    emit(render_table(
        ["Encoder layers", "Params M", "Falcon overhead %"],
        [(p.num_layers, round(p.params_m, 1), round(p.overhead_pct, 1))
         for p in depth_points],
        title="Sweep 1: depth at fixed per-GPU batch 6",
    ))
    emit(render_table(
        ["Batch/GPU", "local ms", "falcon ms", "Falcon overhead %"],
        [(p.batch_per_gpu, round(p.local_step_time * 1e3, 1),
          round(p.falcon_step_time * 1e3, 1), round(p.overhead_pct, 1))
         for p in batch_points],
        title="Sweep 2: per-GPU batch on BERT-large",
    ))

    # (1) fixed batch: no positive size correlation.
    assert depth_points[0].overhead_pct >= \
        depth_points[-1].overhead_pct - 5.0
    # (2) batch is the lever: halving batch inflates overhead massively.
    assert batch_points[0].overhead_pct > \
        batch_points[-1].overhead_pct + 50.0
