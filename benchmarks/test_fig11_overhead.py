"""Fig. 11 — percentage change of training time vs the localGPUs
configuration (the paper's headline result).

Shape to hold: vision overhead < 7% (MobileNetV2 / ResNet-50 < 5%); the
overhead grows with parameter count; BERT-large on falcon-attached GPUs
takes ~2x the local configuration.
"""

from conftest import SIM_STEPS, emit

from repro.experiments import relative_time_rows, render_table, \
    run_configuration
from repro.workloads import get_benchmark


def test_fig11_training_time_overhead(benchmark, gpu_sweep):
    rows = relative_time_rows(gpu_sweep)
    emit(render_table(
        ["Benchmark", "hybridGPUs %", "falconGPUs %"],
        rows,
        title="Fig 11: % Change of Training Time vs localGPUs",
    ))

    pct = {key: {cfg: rec.pct_change_vs(by_config["localGPUs"])
                 for cfg, rec in by_config.items() if cfg != "localGPUs"}
           for key, by_config in gpu_sweep.items()}

    # Vision models: overhead below 7%, small models below 5%.
    assert abs(pct["mobilenetv2"]["falconGPUs"]) < 5.0
    assert abs(pct["resnet50"]["falconGPUs"]) < 5.0
    assert abs(pct["yolov5l"]["falconGPUs"]) < 7.0

    # NLP overhead is pronounced and correlates with parameter count.
    assert pct["bert-base"]["falconGPUs"] > 15.0
    assert pct["bert-large"]["falconGPUs"] > pct["bert-base"]["falconGPUs"]

    # BERT-large takes "almost twice as much time" on falcon GPUs.
    assert 70.0 < pct["bert-large"]["falconGPUs"] < 130.0

    # Overhead ordering follows model size within each domain.
    params = {k: get_benchmark(k).build().params for k in pct}
    vision = ["mobilenetv2", "resnet50", "yolov5l"]
    nlp = ["bert-base", "bert-large"]
    assert params[nlp[0]] < params[nlp[1]]
    assert pct[nlp[0]]["falconGPUs"] < pct[nlp[1]]["falconGPUs"]

    benchmark.pedantic(
        lambda: run_configuration("bert-large", "falconGPUs",
                                  sim_steps=SIM_STEPS),
        rounds=1, iterations=1)
