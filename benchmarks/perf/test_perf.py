"""Perf benchmark suite: the simulator's own speed (tier 2).

Run with ``PYTHONPATH=src python -m pytest benchmarks/perf -q`` or via
``python -m repro perfbench``.  These assert the perf properties the
fast-path engine was built for:

- fast-path plan evaluation beats the event-loop executor per cell,
- the Fig. 16 grid regenerates >=5x faster than the serial event-loop
  study while producing the same values,
- ``BENCH_<date>.json`` reports carry a stable, diffable schema.
"""

import json

from repro.experiments.perfbench import (
    bench_batched_grid,
    bench_fig16_grid,
    bench_plan_eval,
    bench_whatif_retime,
    run_perfbench,
    write_bench_report,
)


def test_fastpath_beats_executor_overall():
    rows = bench_plan_eval(smoke=True, reps=2)
    assert rows, "smoke grid produced no cells"
    for row in rows:
        # Per-cell wall-clock is noisy on loaded CI runners; no single
        # cell may crater, and the mean must favor the fast path.
        assert row["speedup"] > 0.5, (
            f"fast path cratered on "
            f"{row['configuration']}/{row['variant']}: "
            f"{row['speedup']:.2f}x")
        assert row["sim_step_seconds"] > 0.0
    mean = sum(r["speedup"] for r in rows) / len(rows)
    assert mean > 1.0, f"mean plan-eval speedup {mean:.2f}x"


def test_fig16_grid_speedup_and_equivalence():
    grid = bench_fig16_grid(smoke=True)
    assert grid["values_match"], (
        f"fast-path grid diverged from the event-loop study: "
        f"max relative error {grid['max_rel_err']:.2e}")
    assert grid["speedup"] >= 5.0, (
        f"fig16 grid speedup {grid['speedup']:.2f}x below the 5x floor")


def test_batched_grid_speedup_and_equivalence():
    grid = bench_batched_grid(smoke=True)
    assert grid["values_match"], (
        f"batched replay diverged from the scalar fast path: "
        f"max relative error {grid['max_rel_err']:.2e}")
    assert grid["speedup_vs_scalar"] >= 3.0, (
        f"batched grid speedup {grid['speedup_vs_scalar']:.2f}x "
        f"below the 3x floor")
    assert grid["lanes"] == grid["cells"] * len(grid["factors"])
    assert grid["batched_lanes"] + grid["fallback_lanes"] \
        == grid["lanes"]


def test_whatif_retime_is_equivalent():
    report = bench_whatif_retime(smoke=True, reps=1)
    assert report["rows"]
    for row in report["rows"]:
        # Trend-tracked, not speed-gated: the incremental replay must
        # agree with the full relaxation and touch less than the plan.
        assert row["values_match"], (
            f"incremental retime diverged: {row['max_rel_err']:.2e}")
        assert 0.0 < row["mean_cone_fraction"] < 1.0


def test_serial_run_omits_the_jobs_column():
    # --jobs 1 measures no pooled leg; the key is omitted (never a JSON
    # null) so the committed BENCH ledger stays schema-stable.
    grid = bench_fig16_grid(smoke=True)
    assert "fastpath_jobs_s" not in grid
    pooled = bench_fig16_grid(smoke=True, jobs=2)
    assert pooled["fastpath_jobs_s"] > 0.0


def test_bench_report_schema_and_write(tmp_path):
    report = run_perfbench(smoke=True, jobs=1, reps=1)
    for key in ("meta", "plan_eval", "fig16_grid", "batched_grid",
                "whatif_retime", "flow_churn"):
        assert key in report
    meta = report["meta"]
    for key in ("date", "python", "platform", "repro_version", "smoke"):
        assert key in meta
    assert "fastpath_jobs_s" not in report["fig16_grid"]
    assert report["batched_grid"]["speedup_vs_eventloop_study"] \
        >= report["batched_grid"]["speedup_vs_scalar"]
    path = write_bench_report(report, str(tmp_path))
    assert path.name == f"BENCH_{meta['date']}.json"
    loaded = json.loads(path.read_text())
    assert loaded["fig16_grid"]["values_match"] is True
    assert loaded["meta"]["smoke"] is True
