"""Perf benchmark suite: the simulator's own speed (tier 2).

Run with ``PYTHONPATH=src python -m pytest benchmarks/perf -q`` or via
``python -m repro perfbench``.  These assert the perf properties the
fast-path engine was built for:

- fast-path plan evaluation beats the event-loop executor per cell,
- the Fig. 16 grid regenerates >=5x faster than the serial event-loop
  study while producing the same values,
- ``BENCH_<date>.json`` reports carry a stable, diffable schema.
"""

import json

from repro.experiments.perfbench import (
    bench_fig16_grid,
    bench_plan_eval,
    run_perfbench,
    write_bench_report,
)


def test_fastpath_beats_executor_overall():
    rows = bench_plan_eval(smoke=True, reps=2)
    assert rows, "smoke grid produced no cells"
    for row in rows:
        # Per-cell wall-clock is noisy on loaded CI runners; no single
        # cell may crater, and the mean must favor the fast path.
        assert row["speedup"] > 0.5, (
            f"fast path cratered on "
            f"{row['configuration']}/{row['variant']}: "
            f"{row['speedup']:.2f}x")
        assert row["sim_step_seconds"] > 0.0
    mean = sum(r["speedup"] for r in rows) / len(rows)
    assert mean > 1.0, f"mean plan-eval speedup {mean:.2f}x"


def test_fig16_grid_speedup_and_equivalence():
    grid = bench_fig16_grid(smoke=True)
    assert grid["values_match"], (
        f"fast-path grid diverged from the event-loop study: "
        f"max relative error {grid['max_rel_err']:.2e}")
    assert grid["speedup"] >= 5.0, (
        f"fig16 grid speedup {grid['speedup']:.2f}x below the 5x floor")


def test_bench_report_schema_and_write(tmp_path):
    report = run_perfbench(smoke=True, jobs=1, reps=1)
    for key in ("meta", "plan_eval", "fig16_grid"):
        assert key in report
    meta = report["meta"]
    for key in ("date", "python", "platform", "repro_version", "smoke"):
        assert key in meta
    path = write_bench_report(report, str(tmp_path))
    assert path.name == f"BENCH_{meta['date']}.json"
    loaded = json.loads(path.read_text())
    assert loaded["fig16_grid"]["values_match"] is True
    assert loaded["meta"]["smoke"] is True
