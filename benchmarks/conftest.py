"""Shared fixtures for the per-table/figure benchmark harness.

The heavy sweeps are computed once per session and shared by every figure
that the paper derives from the same instrumented runs (Figs. 10-14 come
from one benchmark x GPU-configuration sweep, exactly as in the paper).
"""

import pytest

from repro.experiments import gpu_config_sweep, storage_config_sweep

#: Simulated optimizer steps per run: enough for steady-state statistics
#: while keeping the full harness in minutes.
SIM_STEPS = 8


@pytest.fixture(scope="session")
def gpu_sweep():
    """All five benchmarks on localGPUs / hybridGPUs / falconGPUs."""
    return gpu_config_sweep(sim_steps=SIM_STEPS)


@pytest.fixture(scope="session")
def storage_sweep():
    """All five benchmarks on localGPUs / localNVMe / falconNVMe."""
    return storage_config_sweep(sim_steps=SIM_STEPS)


def emit(text: str) -> None:
    """Print a rendered table so it lands in the harness output."""
    print("\n" + text + "\n")
