"""Fig. 12 — PCIe data transfer rate (GB/s) for Falcon-attached GPU
configurations.

Ingress+egress across the Falcon GPU slots during steady training.
Shape to hold: traffic grows with model size (BERT-large >> ResNet-50 >
MobileNetV2 — the paper reports 76.43, 11.31, and 4 GB/s, i.e. ~19x and
~7x ratios), and the hybrid configuration (4 falcon GPUs) moves roughly
half the falconGPUs traffic.
"""

from conftest import SIM_STEPS, emit

from repro.experiments import render_table, run_configuration, traffic_rows


def test_fig12_pcie_traffic(benchmark, gpu_sweep):
    emit(render_table(
        ["Benchmark", "hybridGPUs GB/s", "falconGPUs GB/s"],
        traffic_rows(gpu_sweep),
        title="Fig 12: PCIe Data Transfer Rate for Falcon Configurations",
    ))

    traffic = {key: by_config["falconGPUs"].falcon_gpu_traffic_gbs
               for key, by_config in gpu_sweep.items()}
    hybrid = {key: by_config["hybridGPUs"].falcon_gpu_traffic_gbs
              for key, by_config in gpu_sweep.items()}

    # Traffic grows with gradient volume / model size.
    assert traffic["mobilenetv2"] < traffic["resnet50"] \
        < traffic["yolov5l"] < traffic["bert-base"] <= traffic["bert-large"]

    # BERT-large moves an order of magnitude more than the small models
    # (paper: ~19x MobileNetV2, ~7x ResNet-50).
    assert traffic["bert-large"] / traffic["mobilenetv2"] > 8.0
    assert traffic["bert-large"] / traffic["resnet50"] > 5.0

    # Local-only configurations put no traffic on the falcon slots.
    for key, by_config in gpu_sweep.items():
        assert by_config["localGPUs"].falcon_gpu_traffic_gbs == 0.0

    # Hybrid (4 falcon GPUs) carries roughly half the falcon traffic.
    for key in traffic:
        assert 0.25 * traffic[key] < hybrid[key] < 0.85 * traffic[key]

    benchmark.pedantic(
        lambda: run_configuration("bert-base", "hybridGPUs",
                                  sim_steps=SIM_STEPS),
        rounds=1, iterations=1)
