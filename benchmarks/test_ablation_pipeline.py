"""Ablation — input-pipeline provisioning (workers and prefetch).

DESIGN.md design choice: the dataloader runs CPU preprocessing on a
worker pool with bounded prefetch, and a per-rank feeder overlaps H2D
copies with compute.  MobileNetV2 — tiny GPU compute, full ImageNet
preprocessing — is the canary: starve the worker pool and the GPUs wait
on the CPUs (this is also why Fig. 13 shows vision stressing CPUs).
"""

from conftest import emit

from repro import ComposableSystem
from repro.experiments import render_table

WORKER_COUNTS = (4, 16, 32)


def throughput_with_workers(workers: int) -> float:
    system = ComposableSystem()
    result = system.train("mobilenetv2", configuration="localGPUs",
                          sim_steps=6, dataloader_workers=workers)
    return result.throughput


def test_ablation_dataloader_provisioning(benchmark):
    tput = {}
    tput[32] = benchmark.pedantic(lambda: throughput_with_workers(32),
                                  rounds=1, iterations=1)
    for w in WORKER_COUNTS:
        if w not in tput:
            tput[w] = throughput_with_workers(w)

    emit(render_table(
        ["Workers", "Images/s", "vs 32 workers %"],
        [(w, round(tput[w], 0),
          round(100 * (tput[w] / tput[32] - 1), 1))
         for w in WORKER_COUNTS],
        title="Ablation: dataloader workers, MobileNetV2 on localGPUs",
    ))

    # Provisioning is monotone: more workers, more throughput...
    assert tput[4] < tput[16] < tput[32]
    # ...and a starved pool throttles the GPUs hard (MobileNetV2's step
    # is short enough that even 16 workers leave it preprocessing-bound,
    # which is exactly the Fig. 13 vision-CPU story).
    assert tput[4] < 0.45 * tput[32]


def test_ablation_prefetch_depth(benchmark):
    def throughput_with_prefetch(depth: int) -> float:
        system = ComposableSystem()
        result = system.train("mobilenetv2", configuration="localGPUs",
                              sim_steps=6, prefetch_batches=depth)
        return result.throughput

    tput = {}
    tput[3] = benchmark.pedantic(lambda: throughput_with_prefetch(3),
                                 rounds=1, iterations=1)
    tput[1] = throughput_with_prefetch(1)

    emit(render_table(
        ["Prefetch batches", "Images/s"],
        [(d, round(t, 0)) for d, t in sorted(tput.items())],
        title="Ablation: prefetch depth, MobileNetV2 on localGPUs",
    ))
    # Deeper prefetch can only help (or tie) — pipelining monotonicity.
    assert tput[3] >= 0.999 * tput[1]
