"""Fig. 10 — GPU performance of the DL benchmarks across configurations.

Per (benchmark, configuration): GPU utilization, GPU memory utilization,
and the fraction of time accessing GPU memory.  Paper observations to
hold: behaviour is similar across configurations; utilization stays high;
falcon configurations show *slightly higher* utilization and *lower*
memory-access time for the BERT benchmarks.
"""

from conftest import SIM_STEPS, emit

from repro.experiments import render_table, run_configuration, \
    telemetry_rows
from repro.experiments.sweeps import GPU_CONFIGS


def test_fig10_gpu_metrics(benchmark, gpu_sweep):
    for metric, label in [("gpu_utilization", "GPU utilization %"),
                          ("gpu_memory", "GPU memory utilization %"),
                          ("gpu_mem_access", "GPU memory access time %")]:
        emit(render_table(
            ["Benchmark", *GPU_CONFIGS],
            telemetry_rows(gpu_sweep, metric),
            title=f"Fig 10: {label}",
        ))

    for key, by_config in gpu_sweep.items():
        utils = {cfg: rec.gpu_utilization
                 for cfg, rec in by_config.items()}
        mems = {cfg: rec.gpu_memory for cfg, rec in by_config.items()}
        # GPU memory footprint is configuration-independent.
        assert max(mems.values()) - min(mems.values()) < 2.0, key
        # Compute-heavy benchmarks keep GPUs busy most of the time.
        if key != "mobilenetv2":
            assert min(utils.values()) > 60.0, key

    # Falcon configs show higher utilization (long NCCL kernels) and
    # lower memory-access share for the BERT benchmarks.
    for key in ("bert-base", "bert-large"):
        local = gpu_sweep[key]["localGPUs"]
        falcon = gpu_sweep[key]["falconGPUs"]
        assert falcon.gpu_utilization >= local.gpu_utilization - 1.0
        assert falcon.gpu_mem_access <= local.gpu_mem_access + 1.0

    # BERT models stress GPU memory (Transformer activations).
    assert gpu_sweep["bert-large"]["localGPUs"].gpu_memory > 85.0

    benchmark.pedantic(
        lambda: run_configuration("resnet50", "falconGPUs",
                                  sim_steps=SIM_STEPS),
        rounds=1, iterations=1)
