"""Ablation — DDP gradient bucket size (comm/compute overlap).

DESIGN.md design choice: DDP overlaps bucketed allreduce with the
backward pass.  This ablation sweeps the bucket size on the
communication-bound case (BERT-large on falcon GPUs):

- tiny buckets pay per-collective latency many times over,
- one giant bucket (no overlap) exposes the whole allreduce after
  backward,
- PyTorch's 25 MB default sits near the sweet spot.
"""

from conftest import emit

from repro import ComposableSystem
from repro.experiments import render_table
from repro.training import DistributedDataParallel

BUCKETS_MB = (1, 25, 700)   # tiny / default / effectively-unbucketed


def step_time_with_bucket(bucket_mb: float) -> float:
    system = ComposableSystem()
    result = system.train(
        "bert-large", configuration="falconGPUs",
        strategy=DistributedDataParallel(bucket_bytes=bucket_mb * 1e6),
        sim_steps=6)
    return result.step_time


def test_ablation_ddp_bucket_size(benchmark):
    times = {}
    times[25] = benchmark.pedantic(lambda: step_time_with_bucket(25),
                                   rounds=1, iterations=1)
    for mb in BUCKETS_MB:
        if mb not in times:
            times[mb] = step_time_with_bucket(mb)

    emit(render_table(
        ["Bucket MB", "Step ms", "vs 25 MB %"],
        [(mb, round(times[mb] * 1e3, 1),
          round(100 * (times[mb] / times[25] - 1), 1))
         for mb in BUCKETS_MB],
        title="Ablation: DDP bucket size, BERT-large on falconGPUs",
    ))

    # One giant bucket exposes the full allreduce: clearly slower.
    assert times[700] > 1.10 * times[25]
    # The default must be within a few percent of the best measured.
    best = min(times.values())
    assert times[25] < 1.10 * best
