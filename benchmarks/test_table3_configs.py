"""Table III — composable host configurations.

Verifies each named configuration resolves to the paper's device set and
times the resolve (which exercises chassis allocation bookkeeping).
"""

from conftest import emit

from repro import CONFIGURATION_DESCRIPTIONS, CONFIGURATION_ORDER, \
    ComposableSystem
from repro.experiments import render_table


def test_table3_configurations(benchmark):
    system = ComposableSystem()

    def resolve_all():
        return {name: system.configure(name)
                for name in CONFIGURATION_ORDER}

    active = benchmark.pedantic(resolve_all, rounds=5, iterations=1)

    emit(render_table(
        ["Label", "Host Configuration"],
        [(name, CONFIGURATION_DESCRIPTIONS[name])
         for name in CONFIGURATION_ORDER],
        title="Table III: Composable Host Configurations",
    ))

    local = active["localGPUs"]
    assert all(n.startswith("host0/gpu") for n in local.gpu_names)
    assert local.storage is system.host.scratch

    hybrid = active["hybridGPUs"]
    assert sum(n.startswith("falcon0") for n in hybrid.gpu_names) == 4

    falcon = active["falconGPUs"]
    assert all(n.startswith("falcon0/gpu") for n in falcon.gpu_names)

    assert active["localNVMe"].storage is system.local_nvme
    assert active["falconNVMe"].storage is system.falcon_nvme
    # Storage configs keep the GPUs local.
    for name in ("localNVMe", "falconNVMe"):
        assert all(n.startswith("host0/gpu")
                   for n in active[name].gpu_names)
