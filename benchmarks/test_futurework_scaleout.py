"""Future-work experiments II: network hierarchy and drawer cabling.

Two studies beyond the paper's evaluation that its §III/§IV discussion
sets up:

- the **scale-out comparison** quantifies the related-work claim that
  "the key enabler is the network": NVLink vs the Falcon PCIe fabric vs
  a two-host 10 GbE ring for one BERT-large gradient allreduce;
- the **dual-connection study** measures §III-B's stated tradeoff (two
  connections to one drawer improve host-device bandwidth but "may slow
  communications between devices in the two halves").
"""

from conftest import emit

from repro.experiments import (
    allreduce_scale_out_study,
    dual_connection_study,
    render_table,
)


def test_scale_out_network_hierarchy(benchmark):
    result = benchmark.pedantic(
        lambda: allreduce_scale_out_study(nbytes=670e6),
        rounds=1, iterations=1)

    emit(render_table(
        ["Placement", "Allreduce ms", "vs NVLink"],
        [
            ("local NVLink mesh", round(result.local_nvlink * 1e3, 1),
             "1.0x"),
            ("falcon PCIe fabric", round(result.falcon_pcie * 1e3, 1),
             f"{result.falcon_vs_local:.1f}x"),
            ("2 hosts over 10GbE",
             round(result.ethernet_2hosts * 1e3, 1),
             f"{result.ethernet_2hosts / result.local_nvlink:.1f}x"),
        ],
        title="Scale-out: BERT-large gradient allreduce by fabric",
    ))

    assert result.local_nvlink < result.falcon_pcie \
        < result.ethernet_2hosts
    assert result.ethernet_vs_falcon > 4.0


def test_dual_connection_tradeoff(benchmark):
    bert = benchmark.pedantic(
        lambda: dual_connection_study("bert-large", sim_steps=5),
        rounds=1, iterations=1)
    resnet = dual_connection_study("resnet50", sim_steps=5)

    emit(render_table(
        ["Benchmark", "Single conn ms", "Dual conn ms", "Dual vs single"],
        [(r.benchmark, round(r.single_connection * 1e3, 1),
          round(r.dual_connection * 1e3, 1),
          f"{r.dual_vs_single_pct:+.1f}%")
         for r in (bert, resnet)],
        title="Dual-connection drawer (paper III-B) tradeoff",
    ))

    # Cross-half P2P through the host hurts the comm-bound model...
    assert bert.dual_vs_single_pct > 8.0
    # ...and is immaterial for the prefetch-hidden vision model.
    assert abs(resnet.dual_vs_single_pct) < 3.0
