"""Fig. 9 — GPU utilization patterns for the DL benchmarks.

Full-run utilization traces on the localGPUs configuration: a repeating
high-utilization pattern with sharp periodic drops "mostly attributed to
periodic synchronization and checkpointing of the models".  BERT's
plateau sits above the vision benchmarks' ("some benchmarks, like
BERT-base and BERT-large, are using the GPU more effectively").
"""

from conftest import emit

from repro.experiments import count_dips, gpu_utilization_trace, \
    render_table
from repro.workloads import benchmark_names


def test_fig9_gpu_utilization_patterns(benchmark):
    traces = {}

    def trace_bert():
        return gpu_utilization_trace("bert-base", sim_steps=30,
                                     sim_checkpoints=3)

    traces["bert-base"] = benchmark.pedantic(trace_bert, rounds=1,
                                             iterations=1)
    for key in benchmark_names():
        if key not in traces:
            traces[key] = gpu_utilization_trace(key, sim_steps=30,
                                                sim_checkpoints=3)

    rows = []
    for key in benchmark_names():
        trace = traces[key]
        rows.append((key, round(trace.plateau_mean, 1),
                     round(trace.peak, 1), count_dips(trace)))
    emit(render_table(
        ["Benchmark", "Plateau util %", "Peak util %", "Checkpoint dips"],
        rows,
        title="Fig 9: GPU Utilization Patterns (localGPUs)",
    ))

    for key, trace in traces.items():
        # Repeating high-utilization pattern...
        assert trace.plateau_mean > 60.0, key
        assert trace.peak > 80.0, key
        # ...with sharp periodic drops at the checkpoints.
        assert count_dips(trace) >= 2, key

    # The dips are deep: whole-run mean sits visibly below the plateau
    # (the paper's "sharp periodic drops of some of the GPUs'
    # utilization").  Cross-benchmark GPU-effectiveness ordering is
    # asserted at fine sampling granularity in the Fig. 10 harness.
    for key, trace in traces.items():
        assert trace.mean < trace.plateau_mean - 2.0, key
