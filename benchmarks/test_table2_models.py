"""Table II — characteristics of the evaluated DL benchmarks.

Parameter counts are *derived* from the layer-by-layer architecture
builders; the benchmark times building all five model graphs.
"""

import pytest
from conftest import emit

from repro.experiments import render_table
from repro.workloads import benchmark_names, get_benchmark


def build_all():
    return {key: get_benchmark(key).build() for key in benchmark_names()}


def test_table2_model_characteristics(benchmark):
    models = benchmark.pedantic(build_all, rounds=3, iterations=1)

    rows = []
    for key in benchmark_names():
        b = get_benchmark(key)
        g = models[key]
        rows.append((
            b.display_name,
            "Computer Vision" if b.domain == "vision" else "NLP (Q&A)",
            b.dataset.name,
            f"{g.params / 1e6:.1f}M",
            b.paper_depth,
        ))
    emit(render_table(
        ["Benchmark", "Domain", "Dataset", "Parameters", "Depth"],
        rows,
        title="Table II: Characteristics of the Evaluated DL Benchmarks",
    ))

    # Derived parameter counts land on the paper's Table II values.
    for key, paper_m in [("mobilenetv2", 3.4), ("resnet50", 25.6),
                         ("yolov5l", 47.0), ("bert-base", 110.0),
                         ("bert-large", 340.0)]:
        assert models[key].params / 1e6 == pytest.approx(paper_m, rel=0.05)
