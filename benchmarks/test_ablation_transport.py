"""Ablation — NCCL transport-penalty sensitivity.

DESIGN.md calibration choice: collective transfers over PCIe/CDFP pay a
byte-inflation penalty (staged bounce-buffer copies), calibrated to 2.2x
so BERT-large's falcon overhead lands at the paper's ~2x.  This ablation
shows what the result *would* look like at line rate (penalty 1.0) and at
a harsher 3.0 — i.e. how load-bearing the calibration is — and that the
local-NVLink baseline is insensitive to it.
"""

from conftest import emit

from repro import ComposableSystem
from repro.experiments import render_table
from repro.fabric.link import Protocol

PENALTIES = (1.0, 2.2, 3.0)


def overhead_with_penalty(pcie_penalty: float) -> float:
    """BERT-large falcon-vs-local total-time overhead (%)."""
    penalty = {
        Protocol.NVLINK2: 1.05,
        Protocol.PCIE3: pcie_penalty,
        Protocol.PCIE4: pcie_penalty,
        Protocol.CDFP: pcie_penalty,
    }
    totals = {}
    for config in ("localGPUs", "falconGPUs"):
        system = ComposableSystem()
        result = system.train("bert-large", configuration=config,
                              sim_steps=6, transport_penalty=penalty)
        totals[config] = result.total_time
    return 100.0 * (totals["falconGPUs"] / totals["localGPUs"] - 1.0)


def test_ablation_transport_penalty(benchmark):
    overheads = {}
    overheads[2.2] = benchmark.pedantic(
        lambda: overhead_with_penalty(2.2), rounds=1, iterations=1)
    for p in PENALTIES:
        if p not in overheads:
            overheads[p] = overhead_with_penalty(p)

    emit(render_table(
        ["PCIe penalty", "BERT-L falcon overhead %"],
        [(p, round(overheads[p], 1)) for p in PENALTIES],
        title="Ablation: NCCL transport penalty sensitivity",
    ))

    # Monotone: more staging overhead, more falcon slowdown.
    assert overheads[1.0] < overheads[2.2] < overheads[3.0]
    # The calibrated value reproduces the paper's ~2x...
    assert 70.0 < overheads[2.2] < 130.0
    # ...and at line rate the gap shrinks dramatically (the paper's
    # result is *not* explained by link bandwidth alone).
    assert overheads[1.0] < 0.6 * overheads[2.2]
